// Deterministic, seeded fault injection for the robustness test suite.
//
// Compiled in under the MAT2C_FAULT_INJECTION CMake option (default ON; the
// hooks reduce to inline no-ops when OFF). Faults are described by a spec
// string — from the MAT2C_FAULT environment variable, or set
// programmatically by tests via setSpec() — as a comma-separated list of
// clauses:
//
//   pass:<name|*>:throw       the named pass throws CompileError at entry
//   pass:<name|*>:panic       the named pass throws InjectedPanic (a type
//                             NOT derived from std::exception — exercises
//                             worker panic containment)
//   pass:<name|*>:sleep:<ms>  sleep <ms> at the pass boundary (trips real
//                             request deadlines deterministically)
//   deadline:pass:<name|*>    force the active DeadlineGuard to expire at
//                             that pass boundary (Timeout without waiting)
//   alloc:after:<N>           the (N+1)-th cooperative allocation guard
//                             point (parser/sema statements, pass
//                             boundaries) throws std::bad_alloc
//   crash:<point>:<N>         the N-th hit (1-based) of the named crash
//                             point aborts the whole process (SIGABRT) —
//                             models a worker dying mid-request for the
//                             supervisor / chaos harness
//   fail:<point>:<N>          from the N-th hit onward, the guarded
//                             operation reports failure (e.g. store.write
//                             counts a putFailure without touching disk)
//   torn:<point>:<N>          from the N-th hit onward, the guarded write
//                             is deliberately truncated partway (a torn
//                             artifact / truncated response frame the
//                             reader must reject or recover from)
//
// Named crash points currently wired in: `compile` (service worker, just
// before the underlying compile), `store.write` (ArtifactStore::store),
// `frame.write` (serve-mode response frame emission).
//
// Every clause is exact — no randomness — so each recovery path in the
// degradation ladder and the service has a test that reaches it on purpose.
#pragma once

#include <string>

namespace mat2c::fault {

/// What a guarded operation should do at a crash point. Crash never reaches
/// the caller (atPoint aborts the process itself); Fail and Torn are acted
/// on by the call site, which knows how to fail or tear its own operation.
enum class PointAction { None, Fail, Torn };

/// Deliberately not derived from std::exception: models a foreign/unknown
/// exception escaping a worker ("panic"); only catch (...) contains it.
struct InjectedPanic {
  const char* what = "injected panic";
};

#ifdef MAT2C_FAULT_INJECTION

/// True when a spec with at least one clause is active.
bool enabled();

/// Installs `spec` (replacing any previous spec and the environment's);
/// empty string clears all injection and resets the alloc counter. Throws
/// std::invalid_argument on a malformed clause (unknown action, non-numeric
/// or overflowing count) — a typo'd spec must not silently disable a fault.
void setSpec(const std::string& spec);

/// The active spec text ("" when none).
std::string activeSpec();

/// Runs the injected action for this pass boundary, if any (sleep first, so
/// sleep + deadline clauses compose).
void atPassBoundary(const std::string& passName);

/// Cooperative allocation guard point; throws std::bad_alloc past the
/// alloc:after:<N> budget.
void onAllocPoint();

/// Crash-point guard: bumps the named point's hit counter and either aborts
/// the process (crash:), or tells the caller to fail (fail:) or tear (torn:)
/// the guarded operation. Returns PointAction::None when no clause matches.
PointAction atPoint(const std::string& point);

#else

inline bool enabled() { return false; }
inline void setSpec(const std::string&) {}
inline std::string activeSpec() { return {}; }
inline void atPassBoundary(const std::string&) {}
inline void onAllocPoint() {}
inline PointAction atPoint(const std::string&) { return PointAction::None; }

#endif

}  // namespace mat2c::fault
