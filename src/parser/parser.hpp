// Recursive-descent parser for the MATLAB subset.
#pragma once

#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "lexer/token.hpp"
#include "support/diagnostics.hpp"

namespace mat2c {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses a whole file (functions and/or script statements). Returns a
  /// Program even when diagnostics were emitted; check diags for errors.
  /// Throws CompileError only on unrecoverable confusion.
  ast::ProgramPtr parseProgram();

 private:
  // -- token stream ---------------------------------------------------------
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(TokenKind k) const { return peek().kind == k; }
  bool accept(TokenKind k);
  const Token& expect(TokenKind k, const char* context);
  void skipNewlines();
  void skipStatementSeparators();

  // -- grammar --------------------------------------------------------------
  ast::FunctionPtr parseFunction();
  std::vector<ast::StmtPtr> parseBlock();  // until end/else/elseif/case/otherwise/function/eof
  bool startsBlockTerminator() const;
  ast::StmtPtr parseStatement();
  ast::StmtPtr parseIf();
  ast::StmtPtr parseFor();
  ast::StmtPtr parseWhile();
  ast::StmtPtr parseSwitch();
  ast::StmtPtr parseAssignOrExpr();
  ast::StmtPtr finishAssign(std::vector<ast::LValue> targets, SourceLoc loc);
  bool tryParseMultiAssignTargets(std::vector<ast::LValue>& out);
  ast::LValue parseLValue();

  ast::ExprPtr parseExpr();            // full expression incl. ranges
  ast::ExprPtr parseOrOr();
  ast::ExprPtr parseAndAnd();
  ast::ExprPtr parseOr();
  ast::ExprPtr parseAnd();
  ast::ExprPtr parseComparison();
  ast::ExprPtr parseRange();
  ast::ExprPtr parseAdditive();
  ast::ExprPtr parseMultiplicative();
  ast::ExprPtr parseUnary();
  ast::ExprPtr parsePower();
  ast::ExprPtr parsePostfix();
  ast::ExprPtr parsePrimary();
  ast::ExprPtr parseMatrixLit();
  std::vector<ast::ExprPtr> parseIndexArgs();  // inside ( ... ), allows : and end

  /// In matrix-literal context: true when the upcoming token begins a new
  /// element rather than continuing the current expression.
  bool matrixElementBoundary() const;

  std::vector<Token> toks_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  int indexDepth_ = 0;   // nesting inside index argument lists (enables : / end)
  int matrixDepth_ = 0;  // nesting inside [ ... ]
  int parenDepth_ = 0;   // nesting inside ( ... ) — newlines are skippable

  // Recursive descent uses the C++ stack; a hostile input (thousands of '('
  // or 'if' in a row) must hit a diagnostic before it hits the guard page.
  static constexpr int kMaxNestDepth = 400;
  int nestDepth_ = 0;    // combined statement + expression nesting
};

/// Convenience: lex + parse. Errors are reported into `diags`.
ast::ProgramPtr parseSource(const std::string& source, DiagnosticEngine& diags);

}  // namespace mat2c
