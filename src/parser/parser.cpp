#include "parser/parser.hpp"

#include <utility>

#include "lexer/lexer.hpp"
#include "support/fault_injection.hpp"
#include "support/limits.hpp"

namespace mat2c {

using namespace ast;

namespace {

/// Tokens that can begin an expression (used for matrix element boundaries).
bool canStartExpr(TokenKind k) {
  switch (k) {
    case TokenKind::Number:
    case TokenKind::String:
    case TokenKind::Identifier:
    case TokenKind::LParen:
    case TokenKind::LBracket:
    case TokenKind::Not:
    case TokenKind::Plus:
    case TokenKind::Minus:
      return true;
    default:
      return false;
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : toks_(std::move(tokens)), diags_(diags) {}

const Token& Parser::peek(int ahead) const {
  std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  if (p >= toks_.size()) return toks_.back();  // Eof sentinel
  return toks_[p];
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind k) {
  if (!check(k)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind k, const char* context) {
  if (!check(k)) {
    diags_.fatal(peek().loc, std::string("expected ") + toString(k) + " " + context +
                                 ", found " + toString(peek().kind));
  }
  return advance();
}

void Parser::skipNewlines() {
  while (check(TokenKind::Newline)) advance();
}

void Parser::skipStatementSeparators() {
  while (check(TokenKind::Newline) || check(TokenKind::Semicolon) || check(TokenKind::Comma))
    advance();
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

ProgramPtr Parser::parseProgram() {
  SourceLoc loc = peek().loc;
  std::vector<FunctionPtr> functions;
  std::vector<StmtPtr> script;
  skipStatementSeparators();
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwFunction)) {
      functions.push_back(parseFunction());
    } else {
      script.push_back(parseStatement());
    }
    skipStatementSeparators();
  }
  return std::make_unique<Program>(std::move(functions), std::move(script), loc);
}

FunctionPtr Parser::parseFunction() {
  SourceLoc loc = expect(TokenKind::KwFunction, "to start function").loc;
  std::vector<std::string> outs;
  std::string name;

  if (accept(TokenKind::LBracket)) {
    while (!check(TokenKind::RBracket)) {
      outs.push_back(expect(TokenKind::Identifier, "in output list").text);
      if (!accept(TokenKind::Comma)) break;
    }
    expect(TokenKind::RBracket, "after output list");
    expect(TokenKind::Assign, "after output list");
    name = expect(TokenKind::Identifier, "as function name").text;
  } else {
    std::string first = expect(TokenKind::Identifier, "as function name").text;
    if (accept(TokenKind::Assign)) {
      outs.push_back(first);
      name = expect(TokenKind::Identifier, "as function name").text;
    } else {
      name = std::move(first);
    }
  }

  std::vector<std::string> params;
  if (accept(TokenKind::LParen)) {
    while (!check(TokenKind::RParen)) {
      params.push_back(expect(TokenKind::Identifier, "in parameter list").text);
      if (!accept(TokenKind::Comma)) break;
    }
    expect(TokenKind::RParen, "after parameter list");
  }

  std::vector<StmtPtr> body = parseBlock();
  accept(TokenKind::KwEnd);  // functions may be end-terminated or not
  return std::make_unique<Function>(std::move(name), std::move(params), std::move(outs),
                                    std::move(body), loc);
}

bool Parser::startsBlockTerminator() const {
  switch (peek().kind) {
    case TokenKind::KwEnd:
    case TokenKind::KwElse:
    case TokenKind::KwElseif:
    case TokenKind::KwCase:
    case TokenKind::KwOtherwise:
    case TokenKind::KwFunction:
    case TokenKind::Eof:
      return true;
    default:
      return false;
  }
}

std::vector<StmtPtr> Parser::parseBlock() {
  ++nestDepth_;  // no decrement needed on the fatal path: fatal() throws and
                 // the whole Parser is abandoned
  std::vector<StmtPtr> body;
  skipStatementSeparators();
  while (!startsBlockTerminator()) {
    body.push_back(parseStatement());
    skipStatementSeparators();
  }
  --nestDepth_;
  return body;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parseStatement() {
  // Statement granularity is the parser's cooperative guard point: a compile
  // deadline expires here (DeadlineGuard::poll is one thread-local load when
  // no deadline is set) and the fault injector's alloc budget counts here.
  DeadlineGuard::poll("parser");
  fault::onAllocPoint();
  if (nestDepth_ > kMaxNestDepth) {
    diags_.fatal(peek().loc, "statement/expression nesting too deep (limit " +
                                 std::to_string(kMaxNestDepth) + ")");
  }
  switch (peek().kind) {
    case TokenKind::KwIf: return parseIf();
    case TokenKind::KwFor: return parseFor();
    case TokenKind::KwWhile: return parseWhile();
    case TokenKind::KwSwitch: return parseSwitch();
    case TokenKind::KwBreak:
      return std::make_unique<Break>(advance().loc);
    case TokenKind::KwContinue:
      return std::make_unique<Continue>(advance().loc);
    case TokenKind::KwReturn:
      return std::make_unique<Return>(advance().loc);
    default:
      return parseAssignOrExpr();
  }
}

StmtPtr Parser::parseIf() {
  SourceLoc loc = expect(TokenKind::KwIf, "").loc;
  std::vector<If::Branch> branches;
  {
    If::Branch b;
    b.cond = parseExpr();
    b.body = parseBlock();
    branches.push_back(std::move(b));
  }
  while (check(TokenKind::KwElseif)) {
    advance();
    If::Branch b;
    b.cond = parseExpr();
    b.body = parseBlock();
    branches.push_back(std::move(b));
  }
  std::vector<StmtPtr> elseBody;
  if (accept(TokenKind::KwElse)) elseBody = parseBlock();
  expect(TokenKind::KwEnd, "to close 'if'");
  return std::make_unique<If>(std::move(branches), std::move(elseBody), loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc loc = expect(TokenKind::KwFor, "").loc;
  std::string var = expect(TokenKind::Identifier, "as loop variable").text;
  expect(TokenKind::Assign, "after loop variable");
  ExprPtr range = parseExpr();
  std::vector<StmtPtr> body = parseBlock();
  expect(TokenKind::KwEnd, "to close 'for'");
  return std::make_unique<For>(std::move(var), std::move(range), std::move(body), loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc loc = expect(TokenKind::KwWhile, "").loc;
  ExprPtr cond = parseExpr();
  std::vector<StmtPtr> body = parseBlock();
  expect(TokenKind::KwEnd, "to close 'while'");
  return std::make_unique<While>(std::move(cond), std::move(body), loc);
}

StmtPtr Parser::parseSwitch() {
  SourceLoc loc = expect(TokenKind::KwSwitch, "").loc;
  ExprPtr subject = parseExpr();
  skipStatementSeparators();
  std::vector<Switch::Case> cases;
  std::vector<StmtPtr> otherwise;
  while (check(TokenKind::KwCase)) {
    advance();
    Switch::Case c;
    c.value = parseExpr();
    c.body = parseBlock();
    cases.push_back(std::move(c));
  }
  if (accept(TokenKind::KwOtherwise)) otherwise = parseBlock();
  expect(TokenKind::KwEnd, "to close 'switch'");
  return std::make_unique<Switch>(std::move(subject), std::move(cases), std::move(otherwise),
                                  loc);
}

LValue Parser::parseLValue() {
  LValue lv;
  lv.loc = peek().loc;
  lv.name = expect(TokenKind::Identifier, "as assignment target").text;
  if (check(TokenKind::LParen)) lv.indices = parseIndexArgs();
  return lv;
}

bool Parser::tryParseMultiAssignTargets(std::vector<LValue>& out) {
  std::size_t save = pos_;
  if (!accept(TokenKind::LBracket)) return false;
  std::vector<LValue> targets;
  while (check(TokenKind::Identifier)) {
    // Restrict to simple/indexed names; anything else means this `[` opened a
    // matrix literal, not a target list.
    try {
      targets.push_back(parseLValue());
    } catch (const CompileError&) {
      pos_ = save;
      return false;
    }
    if (!accept(TokenKind::Comma)) break;
  }
  if (targets.empty() || !accept(TokenKind::RBracket) || !check(TokenKind::Assign)) {
    pos_ = save;
    return false;
  }
  advance();  // '='
  out = std::move(targets);
  return true;
}

StmtPtr Parser::finishAssign(std::vector<LValue> targets, SourceLoc loc) {
  ExprPtr rhs = parseExpr();
  return std::make_unique<Assign>(std::move(targets), std::move(rhs), loc);
}

StmtPtr Parser::parseAssignOrExpr() {
  SourceLoc loc = peek().loc;

  if (check(TokenKind::LBracket)) {
    std::vector<LValue> targets;
    if (tryParseMultiAssignTargets(targets)) return finishAssign(std::move(targets), loc);
    ExprPtr e = parseExpr();
    return std::make_unique<ExprStmt>(std::move(e), loc);
  }

  ExprPtr e = parseExpr();
  if (check(TokenKind::Assign)) {
    advance();
    LValue lv;
    lv.loc = e->loc;
    if (e->kind == NodeKind::Ident) {
      lv.name = static_cast<Ident&>(*e).name;
    } else if (e->kind == NodeKind::CallIndex) {
      auto& ci = static_cast<CallIndex&>(*e);
      if (ci.base->kind != NodeKind::Ident) {
        diags_.fatal(e->loc, "invalid assignment target");
      }
      lv.name = static_cast<Ident&>(*ci.base).name;
      lv.indices = std::move(ci.args);
    } else {
      diags_.fatal(e->loc, "invalid assignment target");
    }
    std::vector<LValue> targets;
    targets.push_back(std::move(lv));
    return finishAssign(std::move(targets), loc);
  }
  return std::make_unique<ExprStmt>(std::move(e), loc);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parseExpr() {
  // Deep '(' nesting re-enters here via parsePrimary; cap it before the
  // recursion can exhaust the C++ stack.
  if (++nestDepth_ > kMaxNestDepth) {
    diags_.fatal(peek().loc, "statement/expression nesting too deep (limit " +
                                 std::to_string(kMaxNestDepth) + ")");
  }
  ExprPtr e = parseOrOr();
  --nestDepth_;
  return e;
}

ExprPtr Parser::parseOrOr() {
  ExprPtr lhs = parseAndAnd();
  while (check(TokenKind::OrOr)) {
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseAndAnd();
    lhs = std::make_unique<Binary>(BinaryOp::OrOr, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parseAndAnd() {
  ExprPtr lhs = parseOr();
  while (check(TokenKind::AndAnd)) {
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseOr();
    lhs = std::make_unique<Binary>(BinaryOp::AndAnd, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parseOr() {
  ExprPtr lhs = parseAnd();
  while (check(TokenKind::Or)) {
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseAnd();
    lhs = std::make_unique<Binary>(BinaryOp::Or, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr lhs = parseComparison();
  while (check(TokenKind::And)) {
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseComparison();
    lhs = std::make_unique<Binary>(BinaryOp::And, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parseComparison() {
  ExprPtr lhs = parseRange();
  while (true) {
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::Eq: op = BinaryOp::Eq; break;
      case TokenKind::Ne: op = BinaryOp::Ne; break;
      case TokenKind::Lt: op = BinaryOp::Lt; break;
      case TokenKind::Le: op = BinaryOp::Le; break;
      case TokenKind::Gt: op = BinaryOp::Gt; break;
      case TokenKind::Ge: op = BinaryOp::Ge; break;
      default: return lhs;
    }
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseRange();
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
}

ExprPtr Parser::parseRange() {
  ExprPtr first = parseAdditive();
  if (!check(TokenKind::Colon)) return first;
  SourceLoc loc = advance().loc;
  ExprPtr second = parseAdditive();
  if (!check(TokenKind::Colon)) {
    return std::make_unique<Range>(std::move(first), nullptr, std::move(second), loc);
  }
  advance();
  ExprPtr third = parseAdditive();
  return std::make_unique<Range>(std::move(first), std::move(second), std::move(third), loc);
}

ExprPtr Parser::parseAdditive() {
  ExprPtr lhs = parseMultiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    // In `[1 -2]` the minus starts a new element; in `[1 - 2]` it is binary.
    if (matrixDepth_ > 0 && parenDepth_ == 0 && peek().precededBySpace &&
        !peek(1).precededBySpace && canStartExpr(peek(1).kind)) {
      return lhs;
    }
    BinaryOp op = check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseMultiplicative();
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr lhs = parseUnary();
  while (true) {
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::Star: op = BinaryOp::MatMul; break;
      case TokenKind::DotStar: op = BinaryOp::ElemMul; break;
      case TokenKind::Slash: op = BinaryOp::MatDiv; break;
      case TokenKind::DotSlash: op = BinaryOp::ElemDiv; break;
      case TokenKind::Backslash: op = BinaryOp::MatLeftDiv; break;
      case TokenKind::DotBackslash: op = BinaryOp::ElemLeftDiv; break;
      default: return lhs;
    }
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseUnary();
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
}

ExprPtr Parser::parseUnary() {
  UnaryOp op;
  switch (peek().kind) {
    case TokenKind::Minus: op = UnaryOp::Neg; break;
    case TokenKind::Plus: op = UnaryOp::Plus; break;
    case TokenKind::Not: op = UnaryOp::Not; break;
    default: return parsePower();
  }
  // Unary chains ('-----x') self-recurse without passing through parseExpr,
  // so they need their own depth accounting.
  if (++nestDepth_ > kMaxNestDepth) {
    diags_.fatal(peek().loc, "statement/expression nesting too deep (limit " +
                                 std::to_string(kMaxNestDepth) + ")");
  }
  SourceLoc loc = advance().loc;
  ExprPtr e = std::make_unique<Unary>(op, parseUnary(), loc);
  --nestDepth_;
  return e;
}

ExprPtr Parser::parsePower() {
  ExprPtr lhs = parsePostfix();
  while (check(TokenKind::Caret) || check(TokenKind::DotCaret)) {
    BinaryOp op = check(TokenKind::Caret) ? BinaryOp::MatPow : BinaryOp::ElemPow;
    SourceLoc loc = advance().loc;
    // The right operand may carry a sign (2^-3) but must not swallow a
    // following '^' — power is left-associative in MATLAB.
    ExprPtr rhs;
    if (check(TokenKind::Minus) || check(TokenKind::Plus) || check(TokenKind::Not)) {
      UnaryOp uop = check(TokenKind::Minus) ? UnaryOp::Neg
                    : check(TokenKind::Plus) ? UnaryOp::Plus
                                             : UnaryOp::Not;
      SourceLoc uloc = advance().loc;
      rhs = std::make_unique<Unary>(uop, parsePostfix(), uloc);
    } else {
      rhs = parsePostfix();
    }
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr e = parsePrimary();
  while (true) {
    if (check(TokenKind::LParen)) {
      // `[a (1)]` is two elements; `[a(1)]` is indexing.
      if (matrixDepth_ > 0 && parenDepth_ == 0 && peek().precededBySpace) return e;
      SourceLoc loc = peek().loc;
      std::vector<ExprPtr> args = parseIndexArgs();
      e = std::make_unique<CallIndex>(std::move(e), std::move(args), loc);
    } else if (check(TokenKind::Transpose)) {
      SourceLoc loc = advance().loc;
      e = std::make_unique<Transpose>(std::move(e), /*conj=*/true, loc);
    } else if (check(TokenKind::DotTranspose)) {
      SourceLoc loc = advance().loc;
      e = std::make_unique<Transpose>(std::move(e), /*conj=*/false, loc);
    } else if (check(TokenKind::Dot)) {
      diags_.fatal(peek().loc, "struct field access is not supported");
    } else {
      return e;
    }
  }
}

std::vector<ExprPtr> Parser::parseIndexArgs() {
  expect(TokenKind::LParen, "to open index/call arguments");
  ++indexDepth_;
  ++parenDepth_;
  std::vector<ExprPtr> args;
  skipNewlines();
  while (!check(TokenKind::RParen)) {
    if (check(TokenKind::Colon) &&
        (peek(1).kind == TokenKind::Comma || peek(1).kind == TokenKind::RParen)) {
      args.push_back(std::make_unique<Colon>(advance().loc));
    } else {
      args.push_back(parseExpr());
    }
    skipNewlines();
    if (!accept(TokenKind::Comma)) break;
    skipNewlines();
  }
  expect(TokenKind::RParen, "to close index/call arguments");
  --indexDepth_;
  --parenDepth_;
  return args;
}

ExprPtr Parser::parseMatrixLit() {
  SourceLoc loc = expect(TokenKind::LBracket, "to open matrix literal").loc;
  ++matrixDepth_;
  std::vector<std::vector<ExprPtr>> rows;
  std::vector<ExprPtr> row;
  auto flushRow = [&] {
    if (!row.empty()) rows.push_back(std::move(row));
    row.clear();
  };
  while (!check(TokenKind::RBracket)) {
    if (check(TokenKind::Eof)) diags_.fatal(loc, "unterminated matrix literal");
    if (accept(TokenKind::Semicolon) || accept(TokenKind::Newline)) {
      flushRow();
      continue;
    }
    if (accept(TokenKind::Comma)) continue;
    row.push_back(parseExpr());
  }
  expect(TokenKind::RBracket, "to close matrix literal");
  flushRow();
  --matrixDepth_;
  return std::make_unique<MatrixLit>(std::move(rows), loc);
}

ExprPtr Parser::parsePrimary() {
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::Number: {
      advance();
      return std::make_unique<NumberLit>(t.numValue, t.imaginary, t.loc);
    }
    case TokenKind::String: {
      advance();
      return std::make_unique<StringLit>(t.text, t.loc);
    }
    case TokenKind::Identifier: {
      advance();
      return std::make_unique<Ident>(t.text, t.loc);
    }
    case TokenKind::KwEnd:
      if (indexDepth_ > 0) {
        advance();
        return std::make_unique<End>(t.loc);
      }
      diags_.fatal(t.loc, "'end' is only valid inside an index expression");
    case TokenKind::LParen: {
      advance();
      ++parenDepth_;
      skipNewlines();
      ExprPtr e = parseExpr();
      skipNewlines();
      expect(TokenKind::RParen, "to close parenthesized expression");
      --parenDepth_;
      return e;
    }
    case TokenKind::LBracket:
      return parseMatrixLit();
    case TokenKind::LBrace:
      diags_.fatal(t.loc, "cell arrays are not supported");
    case TokenKind::At:
      diags_.fatal(t.loc, "function handles are not supported");
    default:
      diags_.fatal(t.loc, std::string("unexpected ") + toString(t.kind) + " in expression");
  }
}

ProgramPtr parseSource(const std::string& source, DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.tokenize(), diags);
  return parser.parseProgram();
}

}  // namespace mat2c
