// Pass-parameter autotuner (ROADMAP item 1).
//
// The paper reports one fixed pass configuration per kernel, but the Table 1
// spread (1.7x-12.7x across the corpus) shows the profitable settings of
// `unrollMaxTrip`, fusion, LICM, CSE and friends are kernel-shaped: the iir
// recurrence wants deep unrolling so LICM can promote its state arrays,
// while a streaming MAC kernel wants the default pipeline and nothing more.
// This subsystem closes the search-then-cache loop Triton applies to GPU
// kernels, on the pass-parameter side of this compiler:
//
//   1. Candidate space — a bounded grid over the output-affecting knobs:
//      unrollMaxTrip in {1,2,4,8,16}, fuseLoops / licm / cse / deadStores /
//      vectorize / checkElim on/off, and (opt-in) reassociating fma rewrites
//      under a separate interpreter-oracle error bound.
//   2. Search — greedy coordinate descent from the default configuration,
//      one coordinate at a time, repeated until a full sweep finds no
//      improvement; when the whole space fits in the candidate budget the
//      search is exhaustive instead. Every evaluated signature is memoized,
//      so revisits are pruned, and the whole search runs under an optional
//      wall-clock deadline (DeadlineGuard) — on expiry the best
//      configuration found so far wins.
//   3. Scoring — each candidate compiles through the degradation-aware
//      Compiler::compileSource path and runs on the VM cycle model with
//      deterministic inputs; a candidate is accepted only when it is
//      strictly faster AND its outputs match the reference interpreter
//      within the error bound (reassoc candidates use their own bound).
//
// The serving layer memoizes the winner's passSignature() in the compile
// cache keyed WITHOUT the pass options (service/cache_key.hpp makeTuned), so
// a warm tune request returns the tuned artifact without searching again.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"

namespace mat2c::tune {

/// What the autotuner searches over and how long it may look.
struct TuneOptions {
  /// Hard cap on candidates compiled + scored (the --budget flag). The
  /// default-configuration candidate always counts as the first one. When
  /// the full grid fits under the budget the search is exhaustive; otherwise
  /// greedy coordinate descent.
  int budget = 48;
  /// Oracle bound: a candidate whose max |error| vs the reference
  /// interpreter exceeds this is rejected no matter how fast it is.
  double maxAbsErr = 1e-9;
  /// Separate bound for reassoc candidates (rounding changes are expected
  /// there); defaults to the same 1e-9 so tuned winners always satisfy the
  /// corpus-wide correctness gate.
  double reassocMaxAbsErr = 1e-9;
  /// Coordinate choices. Trips are clamped through
  /// CompileOptions::effectiveUnrollMaxTrip(), so out-of-range entries
  /// collapse onto their clamped value and are deduplicated.
  std::vector<int> unrollTrips = {1, 2, 4, 8, 16};
  bool tuneVectorize = true;
  bool tuneFuseLoops = true;
  bool tuneLicm = true;
  bool tuneCse = true;
  bool tuneDeadStores = true;
  bool tuneCheckElim = true;
  /// Admit reassoc=on candidates (bounded by reassocMaxAbsErr).
  bool allowReassoc = true;
  /// Wall-clock budget for the whole search in milliseconds (0 = none).
  /// Expiry mid-search keeps the best configuration found so far; expiry
  /// before the default configuration was scored is a Timeout error.
  double wallBudgetMillis = 0.0;
  /// Seed for deterministic VM inputs when TuneInput::args is empty.
  unsigned seed = 1;
};

/// One (kernel, ISA) pair to tune.
struct TuneInput {
  std::string source;
  std::string entry;
  std::vector<sema::ArgSpec> argSpecs;
  /// Concrete inputs for VM scoring and the interpreter oracle; when empty
  /// they are generated deterministically from argSpecs with
  /// TuneOptions::seed (the same generator the CLI --run path uses).
  std::vector<Matrix> args;
  /// Starting configuration; the search varies only the tuned coordinates,
  /// so the ISA, style, limits and degradation setting carry through to
  /// every candidate.
  CompileOptions base = CompileOptions::proposed();
};

/// One scored configuration.
struct TuneCandidate {
  std::string signature;  ///< CompileOptions::passSignature()
  double cycles = std::numeric_limits<double>::infinity();
  double maxAbsErr = 0.0;
  bool compiled = false;   ///< compile succeeded
  bool oracleOk = false;   ///< within the applicable error bound
  bool accepted = false;   ///< became the incumbent when evaluated
  std::string note;        ///< rejection / failure reason ("" when accepted)
};

/// Everything the search did, for reports and the JSON gate document.
struct TuneReport {
  std::string kernel;  ///< entry name (or caller-supplied kernel id)
  std::string isa;
  double defaultCycles = 0.0;  ///< cycles at TuneInput::base
  double tunedCycles = 0.0;    ///< cycles at the winner
  double speedup = 1.0;        ///< defaultCycles / tunedCycles
  double bestMaxAbsErr = 0.0;  ///< oracle error at the winner
  int candidatesTried = 0;     ///< compiles actually performed
  int candidatesPruned = 0;    ///< skipped via the signature memo
  bool exhaustive = false;     ///< full grid fit under the budget
  bool budgetExhausted = false;
  bool deadlineExpired = false;
  CompileOptions best;                   ///< winning configuration
  std::vector<TuneCandidate> candidates; ///< in evaluation order
  std::vector<std::string> prunes;       ///< human-readable pruning decisions
};

/// Search outcome: the report plus the unit compiled at the winner (reused
/// by the service so the tuned artifact is cached without a recompile).
struct TuneResult {
  TuneReport report;
  CompiledUnit unit;
};

/// Runs the search. Throws StructuredError when even the base configuration
/// fails to compile or misses the oracle bound (there is nothing to cache),
/// and Timeout when the deadline expires before the base was scored.
TuneResult autotune(const TuneInput& input, const TuneOptions& options = {});

/// Size of the full candidate grid under `options` (the exhaustive-fallback
/// threshold; exposed for tests and the CLI).
int searchSpaceSize(const TuneOptions& options);

/// Deterministic inputs for `specs` (the CLI --run generator); used when
/// TuneInput::args is empty.
std::vector<Matrix> makeTuneInputs(const std::vector<sema::ArgSpec>& specs, unsigned seed);

/// Human-readable per-kernel summary table for `mat2c tune`.
std::string reportTable(const std::vector<TuneReport>& reports);

/// BENCH_tuned.json document for tools/check_perf.py: per kernel,
/// baseline_cycles = the default pipeline, proposed_cycles = the tuned
/// winner, speedup = default/tuned, max_abs_err = oracle error at the
/// winner; geomean_speedup over the tuned-vs-default ratios.
std::string benchJson(const std::vector<TuneReport>& reports, const std::string& isaName);

}  // namespace mat2c::tune
