#include "tune/tune.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "driver/report.hpp"
#include "interp/interpreter.hpp"
#include "parser/parser.hpp"
#include "support/limits.hpp"

namespace mat2c::tune {

namespace {

/// One searchable knob: a name plus the values it may take, each expressed
/// as a mutation of a candidate CompileOptions.
struct Coordinate {
  std::string name;
  std::vector<std::function<void(CompileOptions&)>> choices;
};

std::vector<Coordinate> makeCoordinates(const TuneOptions& options) {
  std::vector<Coordinate> coords;

  // Unroll trips, clamped through the same normalization the pipeline and
  // the cache key use, then deduplicated — a caller-supplied {0, -3, 1}
  // collapses to the single "never unroll" choice.
  {
    Coordinate c;
    c.name = "unrollMaxTrip";
    std::set<int> trips;
    for (int t : options.unrollTrips) {
      CompileOptions probe;
      probe.unrollMaxTrip = t;
      trips.insert(probe.effectiveUnrollMaxTrip());
    }
    for (int t : trips) {
      c.choices.push_back([t](CompileOptions& o) { o.unrollMaxTrip = t; });
    }
    if (c.choices.size() > 1) coords.push_back(std::move(c));
  }

  auto boolCoord = [&](const char* name, bool enabled, bool CompileOptions::*field) {
    if (!enabled) return;
    Coordinate c;
    c.name = name;
    c.choices.push_back([field](CompileOptions& o) { o.*field = true; });
    c.choices.push_back([field](CompileOptions& o) { o.*field = false; });
    coords.push_back(std::move(c));
  };
  boolCoord("vectorize", options.tuneVectorize, &CompileOptions::vectorize);
  boolCoord("fuseLoops", options.tuneFuseLoops, &CompileOptions::fuseLoops);
  boolCoord("licm", options.tuneLicm, &CompileOptions::licm);
  boolCoord("cse", options.tuneCse, &CompileOptions::cse);
  boolCoord("deadStores", options.tuneDeadStores, &CompileOptions::deadStores);
  boolCoord("checkElim", options.tuneCheckElim, &CompileOptions::checkElim);
  // reassoc is opt-in and ordered {off, on}: the exhaustive enumeration then
  // scores the bit-faithful half of the space first.
  boolCoord("reassoc", options.allowReassoc, &CompileOptions::reassoc);
  return coords;
}

/// Differences between the default and the tuned configuration, e.g.
/// "unrollMaxTrip=16 licm=0" ("(default)" when identical).
std::string optionsDelta(const CompileOptions& base, const CompileOptions& best) {
  std::string out;
  auto add = [&](const std::string& piece) {
    if (!out.empty()) out += ' ';
    out += piece;
  };
  if (base.effectiveUnrollMaxTrip() != best.effectiveUnrollMaxTrip()) {
    add("unrollMaxTrip=" + std::to_string(best.effectiveUnrollMaxTrip()));
  }
  auto flag = [&](const char* name, bool b, bool v) {
    if (b != v) add(std::string(name) + "=" + (v ? "1" : "0"));
  };
  flag("vectorize", base.vectorize, best.vectorize);
  flag("fuseLoops", base.fuseLoops, best.fuseLoops);
  flag("licm", base.licm, best.licm);
  flag("cse", base.cse, best.cse);
  flag("deadStores", base.deadStores, best.deadStores);
  flag("checkElim", base.checkElim, best.checkElim);
  flag("reassoc", base.reassoc, best.reassoc);
  return out.empty() ? "(default)" : out;
}

/// Shared state of one search: the oracle expectation, the signature memo,
/// the incumbent, and the budget/deadline counters.
class Search {
 public:
  Search(const TuneInput& input, const TuneOptions& options)
      : input_(input), options_(options), guard_(options.wallBudgetMillis) {
    args_ = input.args.empty() ? makeTuneInputs(input.argSpecs, options.seed) : input.args;
  }

  TuneResult run() {
    // Score the starting configuration first: it is the incumbent every
    // alternative must strictly beat, and its failure is the caller's error
    // (nothing to cache), not a pruning decision.
    CompileOptions base = input_.base;
    TuneCandidate baseCand = evaluate(base, /*isBase=*/true);
    if (!baseCand.compiled) {
      throw StructuredError(ErrorKind::PassError,
                            "autotune: default configuration failed to compile: " +
                                baseCand.note);
    }
    if (!baseCand.oracleOk) {
      throw StructuredError(ErrorKind::VerifyError,
                            "autotune: default configuration misses the oracle bound: " +
                                baseCand.note);
    }
    report_.defaultCycles = baseCand.cycles;

    std::vector<Coordinate> coords = makeCoordinates(options_);
    int space = searchSpaceSize(options_);
    report_.exhaustive = space <= options_.budget;
    if (report_.exhaustive) {
      exhaustive(coords);
    } else {
      coordinateDescent(coords);
    }

    report_.kernel = input_.entry;
    report_.isa = input_.base.isa.name();
    report_.tunedCycles = bestCycles_;
    report_.speedup = bestCycles_ > 0 ? report_.defaultCycles / bestCycles_ : 1.0;
    report_.best = best_;
    return TuneResult{std::move(report_), std::move(*bestUnit_)};
  }

 private:
  /// True when the search must stop (budget or deadline); records why.
  bool outOfBudget() {
    if (report_.candidatesTried >= options_.budget) {
      if (!report_.budgetExhausted) {
        report_.budgetExhausted = true;
        report_.prunes.push_back("stopped: candidate budget (" +
                                 std::to_string(options_.budget) + ") exhausted");
      }
      return true;
    }
    if (guard_.active() && guard_.expired()) {
      if (!report_.deadlineExpired) {
        report_.deadlineExpired = true;
        report_.prunes.push_back("stopped: tune deadline expired, keeping best so far");
      }
      return true;
    }
    return false;
  }

  /// Compiles + scores one configuration; memoized by passSignature, so an
  /// incumbent value revisited during a sweep costs nothing.
  TuneCandidate evaluate(const CompileOptions& candOptions, bool isBase = false) {
    TuneCandidate cand;
    cand.signature = candOptions.passSignature();
    if (auto it = memo_.find(cand.signature); it != memo_.end()) {
      ++report_.candidatesPruned;
      return it->second;
    }

    ++report_.candidatesTried;
    CompileOptions attempt = candOptions;
    // Map the remaining search deadline onto the compile's own wall budget
    // (tighter wins), the same way the serving layer maps request deadlines.
    if (guard_.active()) {
      double remaining = std::max(guard_.remainingMillis(), 1.0);
      if (attempt.limits.wallBudgetMillis <= 0 ||
          attempt.limits.wallBudgetMillis > remaining) {
        attempt.limits.wallBudgetMillis = remaining;
      }
    }
    std::optional<CompiledUnit> unit;
    try {
      Compiler compiler;
      unit = compiler.compileSource(input_.source, input_.entry, input_.argSpecs, attempt);
      cand.compiled = true;
    } catch (const StructuredError& e) {
      if (isBase && e.kind() == ErrorKind::Timeout) throw;  // nothing scored yet
      cand.note = std::string("compile failed: ") + e.what();
    }
    if (unit) {
      try {
        vm::RunResult run = unit->run(args_);
        cand.cycles = run.cycles.total;
        ensureExpected(unit->fn().outs.size());
        double worst = 0.0;
        if (run.outputs.size() != expected_.size()) {
          cand.note = "oracle: output count mismatch";
        } else {
          for (std::size_t i = 0; i < expected_.size(); ++i) {
            worst = std::max(worst, maxAbsDiff(expected_[i], run.outputs[i]));
          }
          cand.maxAbsErr = worst;
          double bound = candOptions.reassoc ? options_.reassocMaxAbsErr : options_.maxAbsErr;
          cand.oracleOk = worst <= bound;
          if (!cand.oracleOk) {
            char buf[96];
            std::snprintf(buf, sizeof buf, "oracle: max |err| %.3e exceeds bound %.1e",
                          worst, bound);
            cand.note = buf;
            report_.prunes.push_back(cand.signature + ": " + buf);
          }
        }
      } catch (const StructuredError& e) {
        if (isBase && e.kind() == ErrorKind::Timeout) throw;
        cand.note = std::string("vm run failed: ") + e.what();
      } catch (const RuntimeError& e) {
        cand.note = std::string("vm run failed: ") + e.what();
      }
    }

    // Strictly-better acceptance: ties keep the incumbent (the earlier, more
    // default-like configuration), so the winner is deterministic.
    if (cand.compiled && cand.oracleOk && cand.cycles < bestCycles_) {
      cand.accepted = true;
      bestCycles_ = cand.cycles;
      best_ = candOptions;
      bestUnit_ = std::move(unit);
      report_.bestMaxAbsErr = cand.maxAbsErr;
    }
    memo_.emplace(cand.signature, cand);
    report_.candidates.push_back(cand);
    return cand;
  }

  /// Reference-interpreter outputs, computed once per search.
  void ensureExpected(std::size_t nOut) {
    if (haveExpected_) return;
    DiagnosticEngine diags;
    ast::ProgramPtr program = parseSource(input_.source, diags);
    if (diags.hasErrors()) throw CompileError(diags.renderAll());
    Interpreter interp(*program);
    expected_ = interp.callFunction(input_.entry, args_, std::max<std::size_t>(nOut, 1));
    haveExpected_ = true;
  }

  void coordinateDescent(const std::vector<Coordinate>& coords) {
    bool improved = true;
    while (improved && !outOfBudget()) {
      improved = false;
      for (const Coordinate& coord : coords) {
        for (const auto& apply : coord.choices) {
          if (outOfBudget()) return;
          CompileOptions cand = best_;
          apply(cand);
          double before = bestCycles_;
          evaluate(cand);
          if (bestCycles_ < before) improved = true;
        }
      }
    }
  }

  void exhaustive(const std::vector<Coordinate>& coords) {
    // Odometer over the cross product; the all-defaults combination is
    // memo-pruned (the base already scored it).
    std::vector<std::size_t> idx(coords.size(), 0);
    while (!outOfBudget()) {
      CompileOptions cand = input_.base;
      for (std::size_t i = 0; i < coords.size(); ++i) coords[i].choices[idx[i]](cand);
      evaluate(cand);
      std::size_t i = 0;
      for (; i < coords.size(); ++i) {
        if (++idx[i] < coords[i].choices.size()) break;
        idx[i] = 0;
      }
      if (i == coords.size()) return;  // odometer wrapped: space fully scored
    }
  }

  const TuneInput& input_;
  const TuneOptions& options_;
  DeadlineGuard guard_;
  std::vector<Matrix> args_;
  std::vector<Matrix> expected_;
  bool haveExpected_ = false;

  std::unordered_map<std::string, TuneCandidate> memo_;
  TuneReport report_;
  CompileOptions best_;
  double bestCycles_ = std::numeric_limits<double>::infinity();
  std::optional<CompiledUnit> bestUnit_;
};

}  // namespace

int searchSpaceSize(const TuneOptions& options) {
  int size = 1;
  for (const Coordinate& c : makeCoordinates(options)) {
    size *= static_cast<int>(c.choices.size());
  }
  return size;
}

std::vector<Matrix> makeTuneInputs(const std::vector<sema::ArgSpec>& specs, unsigned seed) {
  kernels::InputGen gen(seed);
  std::vector<Matrix> out;
  out.reserve(specs.size());
  for (const auto& spec : specs) {
    const sema::Shape& s = spec.type.shape;
    auto rows = s.rows.extent();
    auto cols = s.cols.extent();
    if (spec.type.elem == sema::Elem::Complex) {
      Matrix m = Matrix::zeros(static_cast<std::size_t>(rows),
                               static_cast<std::size_t>(cols), true);
      for (std::size_t i = 0; i < m.numel(); ++i) m.set(i, Complex{gen.next(), gen.next()});
      out.push_back(std::move(m));
    } else {
      out.push_back(gen.matrix(rows, cols));
    }
  }
  return out;
}

TuneResult autotune(const TuneInput& input, const TuneOptions& options) {
  return Search(input, options).run();
}

std::string reportTable(const std::vector<TuneReport>& reports) {
  report::Table table({"kernel", "default cycles", "tuned cycles", "speedup", "max |err|",
                       "tried", "pruned", "search", "tuned options"});
  for (const TuneReport& r : reports) {
    std::string search = r.exhaustive ? "exhaustive" : "coord-descent";
    if (r.budgetExhausted) search += " (budget)";
    if (r.deadlineExpired) search += " (deadline)";
    table.addRow({r.kernel, report::Table::cycles(r.defaultCycles),
                  report::Table::cycles(r.tunedCycles),
                  report::Table::num(r.speedup, 3) + "x",
                  report::Table::num(r.bestMaxAbsErr, 12),
                  std::to_string(r.candidatesTried), std::to_string(r.candidatesPruned),
                  // The delta compares pass knobs only, so the default-
                  // constructed options work for any ISA (presets may not
                  // exist for custom .isa targets).
                  search, optionsDelta(CompileOptions{}, r.best)});
  }
  return table.toString();
}

std::string benchJson(const std::vector<TuneReport>& reports, const std::string& isaName) {
  // Sorted by kernel for byte-stable diffs against the checked-in baseline.
  std::map<std::string, const TuneReport*> byName;
  for (const TuneReport& r : reports) byName[r.kernel] = &r;

  std::ostringstream os;
  os << "{\n  \"bench\": \"tuned\",\n  \"isa\": \"" << isaName << "\",\n  \"kernels\": {\n";
  double logSum = 0.0;
  std::size_t i = 0;
  for (const auto& [name, r] : byName) {
    logSum += std::log(r->speedup);
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"baseline_cycles\": %.0f, \"proposed_cycles\": %.0f, "
                  "\"speedup\": %.4f, \"max_abs_err\": %.3e, \"candidates\": %d, "
                  "\"tuned\": \"%s\"}%s\n",
                  name.c_str(), r->defaultCycles, r->tunedCycles, r->speedup,
                  r->bestMaxAbsErr, r->candidatesTried,
                  optionsDelta(CompileOptions{}, r->best).c_str(),
                  ++i < byName.size() ? "," : "");
    os << buf;
  }
  double geomean =
      byName.empty() ? 1.0 : std::exp(logSum / static_cast<double>(byName.size()));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", geomean);
  os << "  },\n  \"geomean_speedup\": " << buf << "\n}\n";
  return os.str();
}

}  // namespace mat2c::tune
