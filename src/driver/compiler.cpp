#include "driver/compiler.hpp"

#include <algorithm>

#include "parser/parser.hpp"
#include "support/string_utils.hpp"

namespace mat2c {

std::string CompileOptions::passSignature() const {
  auto tri = [](const std::optional<bool>& v) {
    return v ? (*v ? "1" : "0") : "auto";
  };
  std::string s = "style=";
  s += style == lower::CodeStyle::Proposed ? "proposed" : "coder";
  s += ";constFold=";
  s += constFold ? '1' : '0';
  s += ";idioms=";
  s += idioms ? '1' : '0';
  s += ";vectorize=";
  s += vectorize ? '1' : '0';
  s += ";sinkDecls=";
  s += sinkDecls ? '1' : '0';
  s += ";fuseElementwise=";
  s += tri(fuseElementwise);
  s += ";boundsChecks=";
  s += tri(boundsChecks);
  s += ";checkElim=";
  s += checkElim ? '1' : '0';
  s += ";fuseLoops=";
  s += fuseLoops ? '1' : '0';
  s += ";unroll=";
  s += unrollRecurrences ? '1' : '0';
  s += ";unrollMaxTrip=";
  s += std::to_string(unrollMaxTrip);
  s += ";licm=";
  s += licm ? '1' : '0';
  s += ";cse=";
  s += cse ? '1' : '0';
  s += ";deadStores=";
  s += deadStores ? '1' : '0';
  s += ";reassoc=";
  s += reassoc ? '1' : '0';
  return s;
}

CompiledUnit Compiler::compileSource(const std::string& matlabSource, const std::string& entry,
                                     const std::vector<sema::ArgSpec>& args,
                                     const CompileOptions& options) {
  diags_.clear();
  ast::ProgramPtr program = parseSource(matlabSource, diags_);
  if (diags_.hasErrors()) throw CompileError(diags_.renderAll());

  lower::LowerOptions lowerOpts;
  lowerOpts.style = options.style;
  lowerOpts.fuseElementwise = options.fuseElementwise;
  lowerOpts.boundsChecks = options.boundsChecks;
  lir::Function fn = lower::lowerProgram(*program, entry, args, lowerOpts, diags_);
  if (diags_.hasErrors()) throw CompileError(diags_.renderAll());

  // CoderLike code models MathWorks-generated C: complex arithmetic arrives
  // at the ASIP compiler as expanded re/im expressions and plain a*b+c, so
  // the custom-instruction units are unreachable for it. Cost it (and emit
  // its C) against the ISA with those features stripped; the datapath-
  // independent features (SIMD width, hardware loops, AGUs) remain — the
  // ASIP's C compiler applies those to any C code.
  isa::IsaDescription unitIsa = options.isa;
  if (options.style == lower::CodeStyle::CoderLike) {
    unitIsa.setFeature("fma", false);
    unitIsa.setFeature("cmul", false);
    unitIsa.setFeature("cmac", false);
  }

  opt::PipelineOptions passOpts;
  passOpts.constFold = options.constFold;
  passOpts.idioms = options.idioms;
  passOpts.vectorize = options.vectorize && options.style == lower::CodeStyle::Proposed;
  passOpts.sinkDecls = options.sinkDecls;
  passOpts.checkElim = options.checkElim;
  passOpts.fuseLoops = options.fuseLoops;
  passOpts.unrollRecurrences = options.unrollRecurrences;
  passOpts.unrollMaxTrip = options.unrollMaxTrip;
  passOpts.licm = options.licm;
  passOpts.cse = options.cse;
  passOpts.deadStores = options.deadStores;
  passOpts.reassoc = options.reassoc;
  passOpts.verifyEach = options.verifyEach;
  passOpts.trace = options.tracePasses;
  opt::PipelineReport report = opt::runPipeline(fn, unitIsa, passOpts);

  auto problems = lir::verify(fn);
  if (!problems.empty()) {
    throw CompileError("internal error after optimization: " +
                       std::to_string(problems.size()) + " verifier problem(s):\n  - " +
                       join(problems, "\n  - "));
  }
  return CompiledUnit(std::make_shared<lir::Function>(std::move(fn)), unitIsa, report);
}

double validateAgainstInterpreter(const std::string& matlabSource, const std::string& entry,
                                  const CompiledUnit& unit, const std::vector<Matrix>& args) {
  DiagnosticEngine diags;
  ast::ProgramPtr program = parseSource(matlabSource, diags);
  if (diags.hasErrors()) throw CompileError(diags.renderAll());

  Interpreter interp(*program);
  std::size_t nOut = unit.fn().outs.size();
  std::vector<Matrix> expected = interp.callFunction(entry, args, std::max<std::size_t>(nOut, 1));

  vm::RunResult actual = unit.run(args);
  if (actual.outputs.size() != expected.size()) {
    throw RuntimeError("validate: output count mismatch (" +
                       std::to_string(actual.outputs.size()) + " vs " +
                       std::to_string(expected.size()) + ")");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    worst = std::max(worst, maxAbsDiff(expected[i], actual.outputs[i]));
  }
  return worst;
}

}  // namespace mat2c
