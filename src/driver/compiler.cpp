#include "driver/compiler.hpp"

#include <algorithm>

#include "parser/parser.hpp"
#include "support/string_utils.hpp"

namespace mat2c {

std::string CompileOptions::passSignature() const {
  auto tri = [](const std::optional<bool>& v) {
    return v ? (*v ? "1" : "0") : "auto";
  };
  std::string s = "style=";
  s += style == lower::CodeStyle::Proposed ? "proposed" : "coder";
  s += ";constFold=";
  s += constFold ? '1' : '0';
  s += ";idioms=";
  s += idioms ? '1' : '0';
  s += ";vectorize=";
  s += vectorize ? '1' : '0';
  s += ";sinkDecls=";
  s += sinkDecls ? '1' : '0';
  s += ";fuseElementwise=";
  s += tri(fuseElementwise);
  s += ";boundsChecks=";
  s += tri(boundsChecks);
  s += ";checkElim=";
  s += checkElim ? '1' : '0';
  s += ";fuseLoops=";
  s += fuseLoops ? '1' : '0';
  s += ";unroll=";
  s += unrollRecurrences ? '1' : '0';
  // The clamped value joins the key, so out-of-range trips (0, negatives)
  // share the cache entry of the configuration they actually compile as.
  s += ";unrollMaxTrip=";
  s += std::to_string(effectiveUnrollMaxTrip());
  s += ";licm=";
  s += licm ? '1' : '0';
  s += ";cse=";
  s += cse ? '1' : '0';
  s += ";deadStores=";
  s += deadStores ? '1' : '0';
  s += ";deadCode=";
  s += deadCode ? '1' : '0';
  s += ";reassoc=";
  s += reassoc ? '1' : '0';
  // degrade changes what a *failing* compile produces (a degraded unit vs an
  // error), and limits.maxLirOps gates unroll decisions — both are
  // output-affecting, so they join the cache key. The observation-only
  // limits (source/AST bounds, wall budget) stay out: they cannot change the
  // result of a compile that succeeds.
  s += ";degrade=";
  s += degrade ? '1' : '0';
  s += ';';
  s += limits.outputSignature();
  return s;
}

namespace {

opt::PipelineOptions makePipelineOptions(const CompileOptions& options) {
  opt::PipelineOptions passOpts;
  passOpts.constFold = options.constFold;
  passOpts.idioms = options.idioms;
  passOpts.vectorize = options.vectorize && options.style == lower::CodeStyle::Proposed;
  passOpts.sinkDecls = options.sinkDecls;
  passOpts.checkElim = options.checkElim;
  passOpts.fuseLoops = options.fuseLoops;
  passOpts.unrollRecurrences = options.unrollRecurrences;
  passOpts.unrollMaxTrip = options.effectiveUnrollMaxTrip();
  passOpts.licm = options.licm;
  passOpts.cse = options.cse;
  passOpts.deadStores = options.deadStores;
  passOpts.deadCode = options.deadCode;
  passOpts.reassoc = options.reassoc;
  passOpts.verifyEach = options.verifyEach;
  passOpts.maxLirOps = options.limits.maxLirOps;
  passOpts.trace = options.tracePasses;
  return passOpts;
}

/// Maps a pipeline pass name (as attributed by PassPipeline::run) onto the
/// CompileOptions toggle that removes it. Returns false for passes the
/// ladder cannot disable.
bool disablePass(CompileOptions& options, const std::string& pass) {
  if (pass == "constfold" || pass == "constfold.post") {
    options.constFold = false;
  } else if (pass == "dce" || pass == "dce.post" || pass == "dce.final") {
    options.deadCode = false;
  } else if (pass == "checkelim") {
    options.checkElim = false;
  } else if (pass == "sinkdecls") {
    options.sinkDecls = false;
  } else if (pass == "unroll") {
    options.unrollRecurrences = false;
  } else if (pass == "idioms") {
    options.idioms = false;
  } else if (pass == "vectorize") {
    options.vectorize = false;
  } else if (pass == "fuse") {
    options.fuseLoops = false;
  } else if (pass == "licm") {
    options.licm = false;
  } else if (pass == "cse") {
    options.cse = false;
  } else {
    return false;
  }
  return true;
}

}  // namespace

CompiledUnit Compiler::compileSource(const std::string& matlabSource, const std::string& entry,
                                     const std::vector<sema::ArgSpec>& args,
                                     const CompileOptions& options) {
  diags_.clear();

  if (options.limits.maxSourceBytes > 0 &&
      matlabSource.size() > options.limits.maxSourceBytes) {
    throw StructuredError(ErrorKind::ResourceExhausted,
                          "source is " + std::to_string(matlabSource.size()) +
                              " bytes (limit " +
                              std::to_string(options.limits.maxSourceBytes) + ")");
  }

  // Install the compile's wall-clock budget for this thread; the parser,
  // sema, pass boundaries, and the VM poll it.
  DeadlineGuard guard(options.limits.wallBudgetMillis);
  DeadlineGuard::Scope deadlineScope(guard);

  // Parse once; every ladder rung reuses the same AST.
  ast::ProgramPtr program;
  try {
    program = parseSource(matlabSource, diags_);
    if (diags_.hasErrors()) throw CompileError(diags_.renderAll());
  } catch (const StructuredError&) {
    throw;  // Timeout from the parser's deadline poll
  } catch (const std::bad_alloc&) {
    throw StructuredError(ErrorKind::ResourceExhausted, "out of memory while parsing");
  } catch (const CompileError& e) {
    throw StructuredError(ErrorKind::ParseError, e.what());
  }

  if (options.limits.maxAstNodes > 0 || options.limits.maxAstDepth > 0) {
    ast::TreeStats astStats = ast::collectStats(*program);
    if (options.limits.maxAstNodes > 0 && astStats.nodes > options.limits.maxAstNodes) {
      throw StructuredError(ErrorKind::ResourceExhausted,
                            "program has " + std::to_string(astStats.nodes) +
                                " AST nodes (limit " +
                                std::to_string(options.limits.maxAstNodes) + ")");
    }
    if (options.limits.maxAstDepth > 0 && astStats.depth > options.limits.maxAstDepth) {
      throw StructuredError(ErrorKind::ResourceExhausted,
                            "program nests " + std::to_string(astStats.depth) +
                                " AST levels deep (limit " +
                                std::to_string(options.limits.maxAstDepth) + ")");
    }
  }

  // Degradation ladder: rung 0 compiles as requested; a degradable failure
  // attributed to a pass earns one retry without that pass; any further
  // degradable failure falls back to the CoderLike baseline pipeline. The
  // ladder is recorded in PipelineReport::degraded.
  std::vector<std::string> degraded;
  CompileOptions attempt = options;
  bool triedDisable = false, triedCoderLike = false;
  while (true) {
    try {
      return compileOnce(*program, entry, args, attempt, degraded);
    } catch (const std::bad_alloc&) {
      throw StructuredError(ErrorKind::ResourceExhausted,
                            "out of memory during optimization");
    } catch (const StructuredError& e) {
      if (!options.degrade || !isDegradable(e.kind())) throw;
      if (!triedDisable && !e.pass().empty()) {
        triedDisable = true;
        CompileOptions retry = attempt;
        if (disablePass(retry, e.pass())) {
          degraded.push_back(e.pass());
          attempt = std::move(retry);
          continue;
        }
      }
      if (triedCoderLike || options.style == lower::CodeStyle::CoderLike) throw;
      triedCoderLike = true;
      CompileOptions fallback = CompileOptions::coderLike();
      fallback.isa = options.isa;  // keep the user's target
      fallback.limits = options.limits;
      fallback.verifyEach = options.verifyEach;
      degraded.push_back("coderLike");
      attempt = std::move(fallback);
    }
  }
}

CompiledUnit Compiler::compileOnce(const ast::Program& program, const std::string& entry,
                                   const std::vector<sema::ArgSpec>& args,
                                   const CompileOptions& options,
                                   const std::vector<std::string>& degraded) {
  diags_.clear();
  lir::Function fn = [&] {
    try {
      lir::Function lowered = lower::lowerProgram(program, entry, args, [&] {
        lower::LowerOptions lowerOpts;
        lowerOpts.style = options.style;
        lowerOpts.fuseElementwise = options.fuseElementwise;
        lowerOpts.boundsChecks = options.boundsChecks;
        return lowerOpts;
      }(), diags_);
      if (diags_.hasErrors()) throw CompileError(diags_.renderAll());
      return lowered;
    } catch (const StructuredError&) {
      throw;  // Timeout from sema's deadline poll
    } catch (const std::bad_alloc&) {
      throw StructuredError(ErrorKind::ResourceExhausted, "out of memory during lowering");
    } catch (const CompileError& e) {
      throw StructuredError(ErrorKind::SemaError, e.what());
    }
  }();

  // CoderLike code models MathWorks-generated C: complex arithmetic arrives
  // at the ASIP compiler as expanded re/im expressions and plain a*b+c, so
  // the custom-instruction units are unreachable for it. Cost it (and emit
  // its C) against the ISA with those features stripped; the datapath-
  // independent features (SIMD width, hardware loops, AGUs) remain — the
  // ASIP's C compiler applies those to any C code.
  isa::IsaDescription unitIsa = options.isa;
  if (options.style == lower::CodeStyle::CoderLike) {
    unitIsa.setFeature("fma", false);
    unitIsa.setFeature("cmul", false);
    unitIsa.setFeature("cmac", false);
  }

  opt::PipelineOptions passOpts = makePipelineOptions(options);
  opt::PipelineReport report = opt::runPipeline(fn, unitIsa, passOpts);

  auto problems = lir::verify(fn);
  if (!problems.empty()) {
    // Attribute the corruption to a pass so the ladder can retry without it:
    // re-lower and re-run the same pipeline with per-pass verification on.
    if (!passOpts.verifyEach) {
      CompileOptions attributed = options;
      attributed.verifyEach = true;
      return compileOnce(program, entry, args, attributed, degraded);
    }
    throw StructuredError(ErrorKind::VerifyError,
                          "internal error after optimization: " +
                              std::to_string(problems.size()) +
                              " verifier problem(s):\n  - " + join(problems, "\n  - "));
  }
  report.degraded = degraded;
  return CompiledUnit(std::make_shared<lir::Function>(std::move(fn)), unitIsa, report);
}

double validateAgainstInterpreter(const std::string& matlabSource, const std::string& entry,
                                  const CompiledUnit& unit, const std::vector<Matrix>& args) {
  DiagnosticEngine diags;
  ast::ProgramPtr program = parseSource(matlabSource, diags);
  if (diags.hasErrors()) throw CompileError(diags.renderAll());

  Interpreter interp(*program);
  std::size_t nOut = unit.fn().outs.size();
  std::vector<Matrix> expected = interp.callFunction(entry, args, std::max<std::size_t>(nOut, 1));

  vm::RunResult actual = unit.run(args);
  if (actual.outputs.size() != expected.size()) {
    throw RuntimeError("validate: output count mismatch (" +
                       std::to_string(actual.outputs.size()) + " vs " +
                       std::to_string(expected.size()) + ")");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    worst = std::max(worst, maxAbsDiff(expected[i], actual.outputs[i]));
  }
  return worst;
}

}  // namespace mat2c
