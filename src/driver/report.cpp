#include "driver/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mat2c::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::toString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emitRow = [&](const std::vector<std::string>& row, std::ostringstream& os) {
    os << "| ";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < headers_.size() ? " | " : " |");
    }
    os << '\n';
  };
  std::ostringstream os;
  emitRow(headers_, os);
  os << "|";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << std::string(widths[i] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emitRow(row, os);
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::cycles(double v) {
  auto raw = std::to_string(static_cast<long long>(v + 0.5));
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count && count % 3 == 0 && *it != '-') out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace mat2c::report
