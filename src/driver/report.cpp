#include "driver/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mat2c::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::toString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emitRow = [&](const std::vector<std::string>& row, std::ostringstream& os) {
    os << "| ";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < headers_.size() ? " | " : " |");
    }
    os << '\n';
  };
  std::ostringstream os;
  emitRow(headers_, os);
  os << "|";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << std::string(widths[i] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emitRow(row, os);
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::cycles(double v) {
  auto raw = std::to_string(static_cast<long long>(v + 0.5));
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count && count % 3 == 0 && *it != '-') out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

void appendStats(std::ostringstream& os, const char* key, const lir::FunctionStats& s) {
  os << "\"" << key << "\": {\"statements\": " << s.statements << ", \"loops\": " << s.loops
     << ", \"decls\": " << s.decls << ", \"stores\": " << s.stores
     << ", \"boundsChecks\": " << s.boundsChecks << "}";
}

}  // namespace

std::string telemetryJson(const opt::PipelineReport& report, const std::string& entry,
                          const std::string& isaName) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"entry\": \"" << jsonEscape(entry) << "\",\n";
  os << "  \"isa\": \"" << jsonEscape(isaName) << "\",\n";
  os << "  \"totalMillis\": " << jsonNum(report.totalMillis) << ",\n";
  os << "  \"idiomRewrites\": " << report.idiomRewrites << ",\n";
  os << "  \"checksRemoved\": " << report.checksRemoved << ",\n";
  os << "  \"loopsVectorized\": " << report.vec.loopsVectorized << ",\n";
  os << "  \"loopsFused\": " << report.loopsFused << ",\n";
  os << "  \"loopsUnrolled\": " << report.loopsUnrolled << ",\n";
  os << "  \"exprsHoisted\": " << report.exprsHoisted << ",\n";
  os << "  \"scalarsPromoted\": " << report.scalarsPromoted << ",\n";
  os << "  \"cseEliminated\": " << report.cseEliminated << ",\n";
  os << "  \"storesRemoved\": " << report.storesRemoved << ",\n";
  os << "  \"passes\": [";
  for (std::size_t i = 0; i < report.passes.size(); ++i) {
    const opt::PassRecord& p = report.passes[i];
    os << (i ? ",\n    {" : "\n    {");
    os << "\"name\": \"" << jsonEscape(p.name) << "\", ";
    os << "\"millis\": " << jsonNum(p.millis) << ", ";
    appendStats(os, "before", p.before);
    os << ", ";
    appendStats(os, "after", p.after);
    os << ", \"counters\": {\"checksRemoved\": " << p.checksRemoved
       << ", \"idiomRewrites\": " << p.idiomRewrites
       << ", \"loopsVectorized\": " << p.loopsVectorized
       << ", \"loopsFused\": " << p.loopsFused
       << ", \"loopsUnrolled\": " << p.loopsUnrolled
       << ", \"exprsHoisted\": " << p.exprsHoisted
       << ", \"scalarsPromoted\": " << p.scalarsPromoted
       << ", \"cseEliminated\": " << p.cseEliminated
       << ", \"storesRemoved\": " << p.storesRemoved << "}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Table passTable(const opt::PipelineReport& report) {
  Table t({"pass", "ms", "stmts", "dstmts", "dloops", "ddecls", "counters"});
  for (const opt::PassRecord& p : report.passes) {
    std::string counters;
    auto add = [&](const char* label, int v) {
      if (v == 0) return;
      if (!counters.empty()) counters += ", ";
      counters += label + std::string("=") + std::to_string(v);
    };
    add("checksRemoved", p.checksRemoved);
    add("idiomRewrites", p.idiomRewrites);
    add("loopsVectorized", p.loopsVectorized);
    add("loopsFused", p.loopsFused);
    add("loopsUnrolled", p.loopsUnrolled);
    add("exprsHoisted", p.exprsHoisted);
    add("scalarsPromoted", p.scalarsPromoted);
    add("cseEliminated", p.cseEliminated);
    add("storesRemoved", p.storesRemoved);
    t.addRow({p.name, Table::num(p.millis, 3), std::to_string(p.after.statements),
              std::to_string(p.after.statements - p.before.statements),
              std::to_string(p.after.loops - p.before.loops),
              std::to_string(p.after.decls - p.before.decls), counters});
  }
  return t;
}

}  // namespace mat2c::report
