// The DSP benchmark corpus.
//
// Six kernels matching the paper's evaluation domain ("an ASIP targeting DSP
// applications", six DSP benchmarks, 2x-30x): they span unit-stride real MAC
// loops (fir, matmul), recurrence-bound filters (iir), complex-arithmetic
// kernels that exercise the cmul/cmac custom instructions (cdot, fdeq), and
// a mixed kernel dominated by a scalar transcendental (fmdemod).
// Every kernel is genuine MATLAB source compiled by the full pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/value.hpp"
#include "sema/types.hpp"

namespace mat2c::kernels {

struct KernelSpec {
  std::string name;         // short id: "fir"
  std::string title;        // human description
  std::string source;       // MATLAB source text
  std::string entry;        // entry function name
  std::vector<sema::ArgSpec> argSpecs;
  std::vector<Matrix> args; // deterministic inputs matching argSpecs
};

/// Individual kernels with configurable problem sizes.
KernelSpec makeFir(std::int64_t n = 1024, std::int64_t taps = 64, unsigned seed = 1);
KernelSpec makeIir(std::int64_t n = 4096, std::int64_t sections = 8, unsigned seed = 2);
KernelSpec makeMatmul(std::int64_t m = 48, std::int64_t k = 48, std::int64_t n = 48,
                      unsigned seed = 3);
KernelSpec makeCdot(std::int64_t n = 4096, unsigned seed = 4);
KernelSpec makeFdeq(std::int64_t n = 4096, unsigned seed = 5);
KernelSpec makeFmdemod(std::int64_t n = 4096, unsigned seed = 6);

/// The paper-style benchmark suite (default sizes, fixed seeds).
std::vector<KernelSpec> dspBenchmarkSuite();

/// Extended corpus from the authors' journal follow-up: sliding-window
/// cross-correlation, blockwise DCT-II, framed power estimation.
KernelSpec makeXcorr(std::int64_t n = 2048, std::int64_t m = 64, unsigned seed = 7);
KernelSpec makeBlockDct(std::int64_t blocks = 256, unsigned seed = 8);
KernelSpec makeFramePow(std::int64_t frames = 128, std::int64_t frameLen = 32,
                        unsigned seed = 9);
KernelSpec makeFft(std::int64_t n = 1024, unsigned seed = 10);

/// 5G/comms corpus (ROADMAP item 3): matrix factorizations and a fused
/// uplink symbol chain built on the compiled fft builtin.
KernelSpec makeQrDecomp(std::int64_t n = 32, unsigned seed = 11);
KernelSpec makeCholesky(std::int64_t n = 32, unsigned seed = 12);
KernelSpec makeUplink(std::int64_t n = 512, unsigned seed = 13);

/// Deep IIR cascade ("iir16"): same biquad source as makeIir but with 16
/// sections — past the default unrollMaxTrip of 8, so the section recurrence
/// stays rolled under the stock pipeline and the autotuner's trip=16
/// candidate is a large, honest win (see src/tune).
KernelSpec makeIir16(std::int64_t n = 4096, unsigned seed = 2);

std::vector<KernelSpec> extendedKernelSuite();

/// The nine-kernel design-space-exploration corpus (src/dse): the six paper
/// kernels plus xcorr/blockdct/framepow at reduced problem sizes, so one
/// structural design point compiles and runs the whole corpus in well under a
/// second while keeping every op-mix the full suites exercise.
std::vector<KernelSpec> dseCorpus();

/// The autotuner's default corpus (src/tune, `mat2c tune`): the DSE corpus
/// plus the deep IIR cascade at a reduced size, so one tune sweep covers
/// every op-mix and includes a kernel whose best configuration is far from
/// the default pipeline.
std::vector<KernelSpec> tuneCorpus();

/// Kernel by name with default size ("fir", "iir", "iir16", "matmul",
/// "cdot", "fdeq", "fmdemod", ...); throws std::invalid_argument otherwise.
KernelSpec kernelByName(const std::string& name);

// -- deterministic input generators (shared with tests/benches) -------------

/// xorshift-based uniform doubles in [-1, 1].
class InputGen {
 public:
  explicit InputGen(unsigned seed) : state_(seed * 2654435761u + 1u) {}
  double next();
  Matrix rowVector(std::int64_t n);
  Matrix complexRowVector(std::int64_t n);
  Matrix matrix(std::int64_t rows, std::int64_t cols);

 private:
  std::uint64_t state_;
};

/// S cascaded stable RBJ low-pass biquads: returns [b | a] as S x 3 each.
void biquadCascade(std::int64_t sections, Matrix& b, Matrix& a);

}  // namespace mat2c::kernels
