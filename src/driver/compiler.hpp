// mat2c public API.
//
// A Compiler turns MATLAB source into a CompiledUnit, which can
//   * emit the ANSI-C-with-intrinsics translation unit (the paper's output),
//   * execute on the cycle-model VM (the ASIP substitute) returning both
//     numeric results and cycle counts,
//   * be validated element-wise against the reference interpreter.
//
// Typical use:
//   mat2c::Compiler compiler;
//   mat2c::CompileOptions opts;                    // dspx, Proposed style
//   auto unit = compiler.compileSource(src, "fir",
//       {sema::ArgSpec::row(1024), sema::ArgSpec::row(64)}, opts);
//   std::string c = unit.cCode();
//   auto run = unit.run({xMatrix, hMatrix});       // outputs + cycles
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codegen/cemit.hpp"
#include "interp/interpreter.hpp"
#include "isa/isa.hpp"
#include "lower/lowering.hpp"
#include "opt/passes.hpp"
#include "support/errors.hpp"
#include "support/limits.hpp"
#include "vm/vm.hpp"

namespace mat2c {

struct CompileOptions {
  isa::IsaDescription isa = isa::IsaDescription::preset("dspx");
  lower::CodeStyle style = lower::CodeStyle::Proposed;
  /// Pass toggles (defaults derive from style; override for ablations).
  bool constFold = true;
  bool idioms = true;
  bool vectorize = true;
  /// Decl sinking is a standalone cleanup that benefits every style (it is
  /// not part of vectorization), so it defaults on even for CoderLike and
  /// --no-vectorize pipelines.
  bool sinkDecls = true;
  /// Lowering-mechanism overrides (ablation C): follow `style` when unset.
  std::optional<bool> fuseElementwise;
  std::optional<bool> boundsChecks;
  /// Remove provably-safe bounds checks from checked code (static-shape
  /// payoff; only meaningful together with boundsChecks).
  bool checkElim = false;
  /// Loop-optimization layer (see docs/pipeline.md): cross-statement loop
  /// fusion, recurrence unrolling, loop-invariant code motion with register
  /// promotion, region CSE with store-to-load forwarding, and dead-store /
  /// dead-loop cleanup. On for the Proposed style; coderLike() switches
  /// them all off so the baseline keeps its literal statement stream.
  bool fuseLoops = true;
  bool unrollRecurrences = true;
  /// Largest compile-time trip count the unroll pass fully expands. Values
  /// outside [1, kUnrollTripCap] are clamped by effectiveUnrollMaxTrip() —
  /// the single normalization point shared by the pipeline and the cache
  /// key, so a programmatic caller passing 0 or a negative trip behaves (and
  /// caches) identically to 1 ("never unroll") instead of reaching the pass
  /// unchecked.
  int unrollMaxTrip = 8;
  static constexpr int kUnrollTripCap = 1 << 20;  // matches the CLI flag range
  int effectiveUnrollMaxTrip() const {
    return unrollMaxTrip < 1 ? 1 : (unrollMaxTrip > kUnrollTripCap ? kUnrollTripCap
                                                                   : unrollMaxTrip);
  }
  bool licm = true;
  bool cse = true;
  bool deadStores = true;
  /// Dead-scalar elimination (the dce/dce.post/dce.final passes). Exposed so
  /// the degradation ladder can retry a compile without it.
  bool deadCode = true;
  /// Allow reassociating fma rewrites ((a*b - y) + z -> fma(a,b,z) - y).
  /// Changes rounding (see EXPERIMENTS.md for the measured error); off by
  /// default for bit-faithful comparisons against the interpreter.
  bool reassoc = false;
  /// Run the LIR verifier after every optimization pass; a failure throws
  /// CompileError naming the offending pass (CLI --verify-each).
  bool verifyEach = false;
  /// Observer called after each pass with its telemetry record and the
  /// function as the pass left it (CLI --trace-passes).
  std::function<void(const opt::PassRecord&, const lir::Function&)> tracePasses;

  /// Resource bounds for this compilation (see support/limits.hpp). The
  /// serving layer maps per-request deadlines onto limits.wallBudgetMillis.
  CompileLimits limits;
  /// Graceful degradation: when an optimization pass fails (PassError /
  /// VerifyError), retry once with the offending pass disabled, then fall
  /// back to the CoderLike baseline pipeline, recording the ladder in
  /// PipelineReport::degraded. Input errors, timeouts, and resource
  /// exhaustion are never retried.
  bool degrade = true;

  /// Canonical serialization of every option that can change the compiled
  /// output: style, pass toggles, and the lowering-mechanism overrides.
  /// Excludes the ISA (fingerprinted separately via IsaDescription) and the
  /// observation-only knobs (verifyEach, tracePasses), which cannot alter
  /// the result of a successful compile. Part of the compile-cache key.
  std::string passSignature() const;

  static CompileOptions proposed(const std::string& isaPreset = "dspx") {
    CompileOptions o;
    o.isa = isa::IsaDescription::preset(isaPreset);
    return o;
  }
  /// MATLAB-Coder-like baseline: per-op temporaries, bounds checks, no
  /// vectorization, no custom-instruction idioms.
  static CompileOptions coderLike(const std::string& isaPreset = "dspx") {
    CompileOptions o;
    o.isa = isa::IsaDescription::preset(isaPreset);
    o.style = lower::CodeStyle::CoderLike;
    o.idioms = false;
    o.vectorize = false;
    o.fuseLoops = false;
    o.unrollRecurrences = false;
    o.licm = false;
    o.cse = false;
    o.deadStores = false;
    return o;
  }
};

class CompiledUnit {
 public:
  CompiledUnit(std::shared_ptr<lir::Function> fn, isa::IsaDescription isa,
               opt::PipelineReport report)
      : fn_(std::move(fn)), isa_(std::move(isa)), report_(report) {}

  const lir::Function& fn() const { return *fn_; }
  const isa::IsaDescription& isa() const { return isa_; }
  const opt::PipelineReport& optimizationReport() const { return report_; }

  /// Emitted C translation unit (self-contained with the runtime header).
  std::string cCode(const codegen::EmitOptions& options = {}) const {
    return codegen::emitC(*fn_, isa_, options);
  }
  /// LIR dump (tests/debugging).
  std::string lirDump() const { return lir::print(*fn_); }

  /// Executes on the ASIP cycle-model VM.
  vm::RunResult run(const std::vector<Matrix>& args) const {
    vm::Machine machine(isa_);
    return machine.run(*fn_, args);
  }

 private:
  std::shared_ptr<lir::Function> fn_;
  isa::IsaDescription isa_;
  opt::PipelineReport report_;
};

class Compiler {
 public:
  /// Parse + type/shape-specialize + lower + optimize. Throws
  /// StructuredError (a CompileError; message includes the first diagnostic)
  /// on any front-end error, classified per support/errors.hpp. Honors
  /// options.limits and, when options.degrade is set, retries pass failures
  /// down the degradation ladder before giving up.
  CompiledUnit compileSource(const std::string& matlabSource, const std::string& entry,
                             const std::vector<sema::ArgSpec>& args,
                             const CompileOptions& options = {});

  /// Diagnostics of the last compilation (also useful after success, for
  /// warnings).
  const DiagnosticEngine& diagnostics() const { return diags_; }

 private:
  /// One rung of the degradation ladder: lower + optimize + verify with the
  /// given (possibly degraded) options against an already-parsed program.
  CompiledUnit compileOnce(const ast::Program& program, const std::string& entry,
                           const std::vector<sema::ArgSpec>& args,
                           const CompileOptions& options,
                           const std::vector<std::string>& degraded);

  DiagnosticEngine diags_;
};

/// Runs `entry` through the reference interpreter and through the compiled
/// unit's VM, returning the maximum elementwise |difference| across all
/// outputs. The correctness gate for every experiment.
double validateAgainstInterpreter(const std::string& matlabSource, const std::string& entry,
                                  const CompiledUnit& unit, const std::vector<Matrix>& args);

}  // namespace mat2c
