#include "driver/kernels.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mat2c::kernels {

double InputGen::next() {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  std::uint64_t x = state_ * 2685821657736338717ull;
  // Map the top 53 bits to [-1, 1].
  double u = static_cast<double>(x >> 11) / static_cast<double>(1ull << 53);
  return 2.0 * u - 1.0;
}

Matrix InputGen::rowVector(std::int64_t n) {
  Matrix m = Matrix::zeros(1, static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) m.set(static_cast<std::size_t>(i), Complex{next(), 0});
  return m;
}

Matrix InputGen::complexRowVector(std::int64_t n) {
  Matrix m = Matrix::zeros(1, static_cast<std::size_t>(n), /*complex=*/true);
  for (std::int64_t i = 0; i < n; ++i) {
    m.set(static_cast<std::size_t>(i), Complex{next(), next()});
  }
  return m;
}

Matrix InputGen::matrix(std::int64_t rows, std::int64_t cols) {
  Matrix m = Matrix::zeros(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < m.numel(); ++i) m.set(i, Complex{next(), 0});
  return m;
}

void biquadCascade(std::int64_t sections, Matrix& b, Matrix& a) {
  auto s = static_cast<std::size_t>(sections);
  b = Matrix::zeros(s, 3);
  a = Matrix::zeros(s, 3);
  for (std::size_t j = 0; j < s; ++j) {
    // RBJ low-pass biquad, cutoff spread across sections, Q = 0.707.
    double fc = 0.05 + 0.35 * static_cast<double>(j) / static_cast<double>(std::max<std::size_t>(s - 1, 1));
    double w0 = 2.0 * std::numbers::pi * fc;
    double q = 0.7071;
    double alpha = std::sin(w0) / (2.0 * q);
    double cw = std::cos(w0);
    double a0 = 1.0 + alpha;
    b.set(j, 0, Complex{(1.0 - cw) / 2.0 / a0, 0});
    b.set(j, 1, Complex{(1.0 - cw) / a0, 0});
    b.set(j, 2, Complex{(1.0 - cw) / 2.0 / a0, 0});
    a.set(j, 0, Complex{1.0, 0});
    a.set(j, 1, Complex{-2.0 * cw / a0, 0});
    a.set(j, 2, Complex{(1.0 - alpha) / a0, 0});
  }
}

KernelSpec makeFir(std::int64_t n, std::int64_t taps, unsigned seed) {
  KernelSpec k;
  k.name = "fir";
  k.title = "FIR filter (" + std::to_string(taps) + " taps, " + std::to_string(n) +
            " samples)";
  k.entry = "fir";
  k.source = R"(
function y = fir(x, h)
% Direct-form FIR with a pre-reversed coefficient buffer so the inner
% multiply-accumulate runs unit-stride over both operands.
n = length(x);
m = length(h);
hr = zeros(1, m);
for k = 1:m
  hr(k) = h(m - k + 1);
end
y = zeros(1, n);
for i = m:n
  acc = 0;
  for k = 1:m
    acc = acc + hr(k) * x(i - m + k);
  end
  y(i) = acc;
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n), sema::ArgSpec::row(taps)};
  InputGen gen(seed);
  k.args = {gen.rowVector(n), gen.rowVector(taps)};
  return k;
}

KernelSpec makeIir(std::int64_t n, std::int64_t sections, unsigned seed) {
  KernelSpec k;
  k.name = "iir";
  k.title = "IIR cascaded biquads (" + std::to_string(sections) + " sections, " +
            std::to_string(n) + " samples)";
  k.entry = "iir";
  k.source = R"(
function y = iir(x, b, a)
% Cascade of direct-form-II-transposed biquads; the recurrence over z1/z2
% makes this kernel inherently sequential.
n = length(x);
s = size(b, 1);
y = zeros(1, n);
z1 = zeros(1, s);
z2 = zeros(1, s);
for i = 1:n
  v = x(i);
  for j = 1:s
    w = b(j, 1) * v + z1(j);
    z1(j) = b(j, 2) * v - a(j, 2) * w + z2(j);
    z2(j) = b(j, 3) * v - a(j, 3) * w;
    v = w;
  end
  y(i) = v;
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n), sema::ArgSpec::matrix(sections, 3),
                sema::ArgSpec::matrix(sections, 3)};
  InputGen gen(seed);
  Matrix b;
  Matrix a;
  biquadCascade(sections, b, a);
  k.args = {gen.rowVector(n), b, a};
  return k;
}

KernelSpec makeMatmul(std::int64_t m, std::int64_t kk, std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "matmul";
  k.title = "Matrix multiply (" + std::to_string(m) + "x" + std::to_string(kk) + " * " +
            std::to_string(kk) + "x" + std::to_string(n) + ")";
  k.entry = "mm";
  k.source = R"(
function c = mm(a, b)
% Transpose the left operand once so the dot-product loop is unit-stride
% in both operands (classic DSP-style blocking-free formulation).
m = size(a, 1);
k = size(a, 2);
n = size(b, 2);
at = a';
c = zeros(m, n);
for j = 1:n
  for i = 1:m
    acc = 0;
    for p = 1:k
      acc = acc + at(p, i) * b(p, j);
    end
    c(i, j) = acc;
  end
end
end
)";
  k.argSpecs = {sema::ArgSpec::matrix(m, kk), sema::ArgSpec::matrix(kk, n)};
  InputGen gen(seed);
  k.args = {gen.matrix(m, kk), gen.matrix(kk, n)};
  return k;
}

KernelSpec makeCdot(std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "cdot";
  k.title = "Complex correlator dot product (" + std::to_string(n) + " samples)";
  k.entry = "cdot";
  k.source = R"(
function acc = cdot(x, h)
% Complex conjugate dot product - the inner kernel of correlators,
% beamformers and matched filters. One cmac per sample on the ASIP.
n = length(x);
acc = 0;
for k = 1:n
  acc = acc + x(k) * conj(h(k));
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n, /*complex=*/true),
                sema::ArgSpec::row(n, /*complex=*/true)};
  InputGen gen(seed);
  k.args = {gen.complexRowVector(n), gen.complexRowVector(n)};
  return k;
}

KernelSpec makeFdeq(std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "fdeq";
  k.title = "Frequency-domain equalizer (" + std::to_string(n) + " bins)";
  k.entry = "fdeq";
  k.source = R"(
function y = fdeq(x, h)
% One-tap-per-bin frequency-domain equalizer: elementwise complex multiply
% by the conjugated channel estimate.
y = x .* conj(h);
end
)";
  k.argSpecs = {sema::ArgSpec::row(n, /*complex=*/true),
                sema::ArgSpec::row(n, /*complex=*/true)};
  InputGen gen(seed);
  k.args = {gen.complexRowVector(n), gen.complexRowVector(n)};
  return k;
}

KernelSpec makeFmdemod(std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "fmdemod";
  k.title = "Quadrature FM demodulator (" + std::to_string(n) + " samples)";
  k.entry = "fmdemod";
  k.source = R"(
function y = fmdemod(x)
% Polar discriminator: differential complex product then phase extraction.
% The product loop vectorizes onto the complex SIMD unit; the atan2 loop is
% scalar on any target.
n = length(x);
d = zeros(1, n);
for i = 2:n
  di = x(i) * conj(x(i - 1));
  d(i) = di;
end
y = zeros(1, n);
for i = 2:n
  y(i) = atan2(imag(d(i)), real(d(i)));
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n, /*complex=*/true)};
  InputGen gen(seed);
  // An FM-like signal: unit-magnitude rotating phasor with varying rate.
  Matrix x = Matrix::zeros(1, static_cast<std::size_t>(n), /*complex=*/true);
  double phase = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    phase += 0.2 + 0.15 * gen.next();
    x.set(static_cast<std::size_t>(i), Complex{std::cos(phase), std::sin(phase)});
  }
  k.args = {std::move(x)};
  return k;
}

KernelSpec makeXcorr(std::int64_t n, std::int64_t m, unsigned seed) {
  KernelSpec k;
  k.name = "xcorr";
  k.title = "Sliding cross-correlation (" + std::to_string(n) + " samples, lag window " +
            std::to_string(m) + ")";
  k.entry = "xc";
  k.source = R"(
function r = xc(x, h)
% Sliding-window cross-correlation: one windowed dot product per lag.
n = length(x);
m = length(h);
r = zeros(1, n - m + 1);
for k = 1:n - m + 1
  r(k) = sum(x(k:k + m - 1) .* h);
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n), sema::ArgSpec::row(m)};
  InputGen gen(seed);
  k.args = {gen.rowVector(n), gen.rowVector(m)};
  return k;
}

KernelSpec makeBlockDct(std::int64_t blocks, unsigned seed) {
  KernelSpec k;
  std::int64_t n = blocks * 8;
  k.name = "blockdct";
  k.title = "Blockwise 8-point DCT-II (" + std::to_string(blocks) + " blocks)";
  k.entry = "bdct";
  k.source = R"(
function y = bdct(x, ct)
% 8-point DCT-II applied block by block. ct is the transposed basis so the
% inner dot product is unit-stride in both operands.
n = length(x);
b = n / 8;
y = zeros(1, n);
for j = 1:b
  base = (j - 1) * 8;
  for i = 1:8
    acc = 0;
    for k = 1:8
      acc = acc + ct(k, i) * x(base + k);
    end
    y(base + i) = acc;
  end
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n), sema::ArgSpec::matrix(8, 8)};
  InputGen gen(seed);
  Matrix ct = Matrix::zeros(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {      // basis index (column of ct)
    double scale = i == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    for (std::size_t kk = 0; kk < 8; ++kk) {  // sample index (row of ct)
      ct.set(kk, i,
             Complex{scale * std::cos((2.0 * static_cast<double>(kk) + 1.0) *
                                      static_cast<double>(i) * std::numbers::pi / 16.0),
                     0});
    }
  }
  k.args = {gen.rowVector(n), std::move(ct)};
  return k;
}

KernelSpec makeFramePow(std::int64_t frames, std::int64_t frameLen, unsigned seed) {
  KernelSpec k;
  std::int64_t n = frames * frameLen;
  k.name = "framepow";
  k.title = "Windowed frame power (" + std::to_string(frames) + " frames of " +
            std::to_string(frameLen) + ")";
  k.entry = "fpow";
  k.source = R"(
function p = fpow(x, w)
% Mean power of windowed, non-overlapping frames.
n = length(x);
m = length(w);
f = n / m;
p = zeros(1, f);
for j = 1:f
  base = (j - 1) * m;
  acc = 0;
  for k = 1:m
    t = x(base + k) * w(k);
    acc = acc + t * t;
  end
  p(j) = acc / m;
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n), sema::ArgSpec::row(frameLen)};
  InputGen gen(seed);
  // Hann window.
  Matrix w = Matrix::zeros(1, static_cast<std::size_t>(frameLen));
  for (std::int64_t i = 0; i < frameLen; ++i) {
    w.set(static_cast<std::size_t>(i),
          Complex{0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                       static_cast<double>(frameLen - 1)),
                  0});
  }
  k.args = {gen.rowVector(n), std::move(w)};
  return k;
}

KernelSpec makeFft(std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "fft";
  k.title = "Radix-2 complex FFT (" + std::to_string(n) + " points)";
  k.entry = "fftr2";
  k.source = R"(
function y = fftr2(x, tw)
% In-place iterative radix-2 DIT FFT. tw holds the n/2 twiddle factors
% tw(k) = exp(-2i*pi*(k-1)/n). Bit reversal uses the classic add-with-carry
% while loop; butterfly stages double the span each pass.
n = length(x);
y = zeros(1, n);
for i = 1:n
  y(i) = x(i);
end
j = 1;
for i = 1:n - 1
  if i < j
    t = y(j);
    y(j) = y(i);
    y(i) = t;
  end
  k = n / 2;
  while k < j
    j = j - k;
    k = k / 2;
  end
  j = j + k;
end
len = 2;
while len <= n
  half = len / 2;
  step = n / len;
  for i = 1:len:n
    for q = 1:half
      p = i + q - 1;
      w = tw((q - 1) * step + 1);
      u = y(p);
      v = y(p + half) * w;
      y(p) = u + v;
      y(p + half) = u - v;
    end
  end
  len = len * 2;
end
end
)";
  k.argSpecs = {sema::ArgSpec::row(n, /*complex=*/true),
                sema::ArgSpec::row(n / 2, /*complex=*/true)};
  InputGen gen(seed);
  Matrix tw = Matrix::zeros(1, static_cast<std::size_t>(n / 2), /*complex=*/true);
  for (std::int64_t i = 0; i < n / 2; ++i) {
    double ang = -2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    tw.set(static_cast<std::size_t>(i), Complex{std::cos(ang), std::sin(ang)});
  }
  k.args = {gen.complexRowVector(n), std::move(tw)};
  return k;
}

KernelSpec makeQrDecomp(std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "qr_decomp";
  k.title = "QR decomposition, modified Gram-Schmidt (" + std::to_string(n) + "x" +
            std::to_string(n) + ")";
  k.entry = "qr_mgs";
  k.source = R"(
function [q, r] = qr_mgs(a)
% Modified Gram-Schmidt QR: column-at-a-time projections keep every inner
% loop a unit-stride dot product or axpy over a single column.
n = size(a, 1);
q = zeros(n, n);
r = zeros(n, n);
v = zeros(n, 1);
for j = 1:n
  for i = 1:n
    v(i) = a(i, j);
  end
  for k = 1:j - 1
    acc = 0;
    for i = 1:n
      acc = acc + q(i, k) * v(i);
    end
    r(k, j) = acc;
    for i = 1:n
      v(i) = v(i) - acc * q(i, k);
    end
  end
  acc = 0;
  for i = 1:n
    acc = acc + v(i) * v(i);
  end
  nrm = sqrt(acc);
  r(j, j) = nrm;
  for i = 1:n
    q(i, j) = v(i) / nrm;
  end
end
end
)";
  k.argSpecs = {sema::ArgSpec::matrix(n, n)};
  InputGen gen(seed);
  // Random matrix with a boosted diagonal so the factorization is
  // well-conditioned at every problem size.
  Matrix a = gen.matrix(n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    auto ii = static_cast<std::size_t>(i);
    a.set(ii, ii, a.at(ii, ii) + Complex{2.0, 0.0});
  }
  k.args = {std::move(a)};
  return k;
}

KernelSpec makeCholesky(std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "cholesky";
  k.title = "Cholesky factorization (" + std::to_string(n) + "x" + std::to_string(n) + " SPD)";
  k.entry = "chol_ll";
  k.source = R"(
function l = chol_ll(a)
% Left-looking Cholesky a = l * l'. The k loops run zero-trip for the
% first column - exactly the downward/empty-range shape earlier corpus
% expansions flushed bugs out of.
n = size(a, 1);
l = zeros(n, n);
for j = 1:n
  acc = a(j, j);
  for k = 1:j - 1
    acc = acc - l(j, k) * l(j, k);
  end
  d = sqrt(acc);
  l(j, j) = d;
  for i = j + 1:n
    s = a(i, j);
    for k = 1:j - 1
      s = s - l(i, k) * l(j, k);
    end
    l(i, j) = s / d;
  end
end
end
)";
  k.argSpecs = {sema::ArgSpec::matrix(n, n)};
  InputGen gen(seed);
  // SPD input: B * B' + n * I.
  Matrix b = gen.matrix(n, n);
  Matrix a = Matrix::zeros(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = i == j ? static_cast<double>(n) : 0.0;
      for (std::int64_t p = 0; p < n; ++p) {
        acc += b.at(static_cast<std::size_t>(i), static_cast<std::size_t>(p)).real() *
               b.at(static_cast<std::size_t>(j), static_cast<std::size_t>(p)).real();
      }
      a.set(static_cast<std::size_t>(i), static_cast<std::size_t>(j), Complex{acc, 0.0});
    }
  }
  k.args = {std::move(a)};
  return k;
}

KernelSpec makeUplink(std::int64_t n, unsigned seed) {
  KernelSpec k;
  k.name = "uplink_chain";
  k.title = "OFDM uplink chain: FFT + channel estimate + MMSE equalize + demod (" +
            std::to_string(n) + " subcarriers)";
  k.entry = "uplink";
  k.source = R"(
function s = uplink(y, yp, p, np)
% Fused uplink symbol chain. y is the received data symbol (time domain),
% yp the received pilot symbol (frequency domain), p the transmitted pilot,
% np the noise power. The fft builtin feeds a single elementwise dataflow:
% least-squares channel estimate, MMSE equalizer, hard QPSK decision.
yf = fft(y);
h = yp .* conj(p) ./ (abs(p) .* abs(p));
g = conj(h) ./ (abs(h) .* abs(h) + np);
xe = g .* yf;
s = complex(sign(real(xe)), sign(imag(xe)));
end
)";
  k.argSpecs = {sema::ArgSpec::row(n, /*complex=*/true),
                sema::ArgSpec::row(n, /*complex=*/true),
                sema::ArgSpec::row(n, /*complex=*/true), sema::ArgSpec::scalar()};
  InputGen gen(seed);
  auto un = static_cast<std::size_t>(n);
  auto qpsk = [](double u) { return u >= 0.0 ? std::numbers::sqrt2 / 2.0
                                             : -std::numbers::sqrt2 / 2.0; };
  Matrix p = Matrix::zeros(1, un, /*complex=*/true);   // transmitted pilot
  Matrix yp = Matrix::zeros(1, un, /*complex=*/true);  // received pilot (freq)
  std::vector<Complex> yfTrue(un);                     // received data (freq)
  for (std::size_t i = 0; i < un; ++i) {
    // Smooth frequency-selective channel, |H| in [0.5, 1.5].
    double t = 2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    Complex hch = Complex{1.0 + 0.5 * std::cos(3.0 * t), 0.5 * std::sin(2.0 * t)};
    Complex pilot{qpsk(gen.next()), qpsk(gen.next())};
    Complex data{qpsk(gen.next()), qpsk(gen.next())};
    p.set(i, pilot);
    yp.set(i, hch * pilot);
    yfTrue[i] = hch * data;
  }
  // Time-domain data symbol y = idft(yfTrue).
  Matrix y = Matrix::zeros(1, un, /*complex=*/true);
  for (std::size_t i = 0; i < un; ++i) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < un; ++j) {
      double ang = 2.0 * std::numbers::pi * static_cast<double>(i) *
                   static_cast<double>(j) / static_cast<double>(n);
      acc += yfTrue[j] * Complex{std::cos(ang), std::sin(ang)};
    }
    y.set(i, acc / static_cast<double>(n));
  }
  k.args = {std::move(y), std::move(yp), std::move(p), Matrix::scalar(0.1)};
  return k;
}

std::vector<KernelSpec> extendedKernelSuite() {
  return {makeXcorr(),    makeBlockDct(), makeFramePow(), makeFft(),
          makeQrDecomp(), makeCholesky(), makeUplink()};
}

std::vector<KernelSpec> dspBenchmarkSuite() {
  return {makeFir(), makeIir(), makeMatmul(), makeCdot(), makeFdeq(), makeFmdemod()};
}

std::vector<KernelSpec> dseCorpus() {
  return {makeFir(512, 32, 1), makeIir(1024, 8, 2),     makeMatmul(32, 32, 32, 3),
          makeCdot(2048, 4),   makeFdeq(2048, 5),       makeFmdemod(2048, 6),
          makeXcorr(1024, 48, 7), makeBlockDct(128, 8), makeFramePow(96, 32, 9)};
}

KernelSpec makeIir16(std::int64_t n, unsigned seed) {
  KernelSpec k = makeIir(n, 16, seed);
  k.name = "iir16";
  return k;
}

std::vector<KernelSpec> tuneCorpus() {
  std::vector<KernelSpec> corpus = dseCorpus();
  corpus.push_back(makeIir16(1024, 2));
  return corpus;
}

KernelSpec kernelByName(const std::string& name) {
  if (name == "fir") return makeFir();
  if (name == "iir") return makeIir();
  if (name == "iir16") return makeIir16();
  if (name == "matmul") return makeMatmul();
  if (name == "cdot") return makeCdot();
  if (name == "fdeq") return makeFdeq();
  if (name == "fmdemod") return makeFmdemod();
  if (name == "xcorr") return makeXcorr();
  if (name == "blockdct") return makeBlockDct();
  if (name == "framepow") return makeFramePow();
  if (name == "fft") return makeFft();
  if (name == "qr_decomp") return makeQrDecomp();
  if (name == "cholesky") return makeCholesky();
  if (name == "uplink_chain") return makeUplink();
  throw std::invalid_argument("unknown kernel '" + name + "'");
}

}  // namespace mat2c::kernels
