// Plain-text table rendering for benchmark harness output.
#pragma once

#include <string>
#include <vector>

#include "opt/passes.hpp"

namespace mat2c::report {

/// Monospace table with a header row, column alignment, and a rule line —
/// matches the formatting of the paper-style result tables in
/// EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  std::string toString() const;

  /// Convenience formatting used across benches.
  static std::string num(double v, int precision = 1);
  static std::string cycles(double v);  // thousands separators

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable pipeline telemetry (CLI --telemetry-json). One object per
/// executed pass with its wall time, before/after LIR statistics, and
/// pass-specific counters; schema documented in docs/pipeline.md.
std::string telemetryJson(const opt::PipelineReport& report, const std::string& entry,
                          const std::string& isaName);

/// Plain-text per-pass telemetry table (CLI --time-passes, benches).
Table passTable(const opt::PipelineReport& report);

}  // namespace mat2c::report
