#include "interp/interpreter.hpp"

#include <algorithm>
#include <cmath>

namespace mat2c {

using namespace ast;

Interpreter::Interpreter(const Program& program) : program_(program) {}

void Interpreter::step() {
  if (++steps_ > maxSteps_) throw RuntimeError("interpreter step budget exceeded");
}

std::vector<Matrix> Interpreter::callFunction(const std::string& name,
                                              const std::vector<Matrix>& args,
                                              std::size_t nOut) {
  const Function* fn = program_.findFunction(name);
  if (!fn) throw RuntimeError("undefined function '" + name + "'");
  if (args.size() > fn->params.size())
    throw RuntimeError("too many arguments to '" + name + "'");
  if (nOut > fn->outs.size() && !(nOut == 1 && fn->outs.empty()))
    throw RuntimeError("too many outputs requested from '" + name + "'");
  if (++callDepth_ > 200) {
    --callDepth_;
    throw RuntimeError("recursion limit exceeded");
  }

  Env env;
  for (std::size_t i = 0; i < args.size(); ++i) env.vars[fn->params[i]] = args[i];
  try {
    execBlock(fn->body, env);
  } catch (const ReturnSignal&) {
  }
  --callDepth_;

  std::vector<Matrix> outs;
  for (std::size_t i = 0; i < std::max<std::size_t>(nOut, 1) && i < fn->outs.size(); ++i) {
    auto it = env.vars.find(fn->outs[i]);
    if (it == env.vars.end())
      throw RuntimeError("output '" + fn->outs[i] + "' of '" + name + "' was never assigned");
    outs.push_back(it->second);
  }
  return outs;
}

std::map<std::string, Matrix> Interpreter::runScript() {
  Env env;
  execBlock(program_.scriptBody, env);
  return env.vars;
}

void Interpreter::execBlock(const std::vector<StmtPtr>& body, Env& env) {
  for (const auto& s : body) execStmt(*s, env);
}

void Interpreter::execStmt(const Stmt& stmt, Env& env) {
  step();
  switch (stmt.kind) {
    case NodeKind::Assign:
      execAssign(static_cast<const Assign&>(stmt), env);
      return;
    case NodeKind::ExprStmt:
      eval(*static_cast<const ExprStmt&>(stmt).expr, env);
      return;
    case NodeKind::If: {
      const auto& s = static_cast<const If&>(stmt);
      for (const auto& b : s.branches) {
        if (eval(*b.cond, env).truthy()) {
          execBlock(b.body, env);
          return;
        }
      }
      execBlock(s.elseBody, env);
      return;
    }
    case NodeKind::For: {
      const auto& s = static_cast<const For&>(stmt);
      Matrix range = eval(*s.range, env);
      // MATLAB iterates over the columns of the range value.
      for (std::size_t c = 0; c < range.cols(); ++c) {
        Matrix iter;
        if (range.rows() == 1) {
          iter = Matrix::scalar(range.at(0, c));
        } else {
          iter = Matrix::zeros(range.rows(), 1, range.isComplex());
          for (std::size_t r = 0; r < range.rows(); ++r) iter.set(r, 0, range.at(r, c));
        }
        env.vars[s.var] = std::move(iter);
        try {
          execBlock(s.body, env);
        } catch (const BreakSignal&) {
          return;
        } catch (const ContinueSignal&) {
        }
      }
      return;
    }
    case NodeKind::While: {
      const auto& s = static_cast<const While&>(stmt);
      while (true) {
        step();
        if (!eval(*s.cond, env).truthy()) return;
        try {
          execBlock(s.body, env);
        } catch (const BreakSignal&) {
          return;
        } catch (const ContinueSignal&) {
        }
      }
    }
    case NodeKind::Switch: {
      const auto& s = static_cast<const Switch&>(stmt);
      Matrix subject = eval(*s.subject, env);
      auto matches = [&](const Matrix& v) {
        if (subject.isString() && v.isString())
          return subject.stringValue() == v.stringValue();
        if (subject.isScalar() && v.isScalar())
          return subject.at(0) == v.at(0);
        return false;
      };
      for (const auto& c : s.cases) {
        bool hit = false;
        if (c.value->kind == NodeKind::MatrixLit) {
          // case {a, b} alternative lists use cell arrays in MATLAB; we accept
          // a bracketed list of scalars with the same meaning.
          const auto& lit = static_cast<const MatrixLit&>(*c.value);
          for (const auto& row : lit.rows) {
            for (const auto& el : row) {
              if (matches(eval(*el, env))) {
                hit = true;
                break;
              }
            }
          }
        } else {
          hit = matches(eval(*c.value, env));
        }
        if (hit) {
          execBlock(c.body, env);
          return;
        }
      }
      execBlock(s.otherwise, env);
      return;
    }
    case NodeKind::Break: throw BreakSignal{};
    case NodeKind::Continue: throw ContinueSignal{};
    case NodeKind::Return: throw ReturnSignal{};
    default:
      throw RuntimeError(std::string("cannot execute node ") + toString(stmt.kind));
  }
}

void Interpreter::execAssign(const Assign& stmt, Env& env) {
  if (stmt.targets.size() == 1) {
    assignInto(stmt.targets[0], eval(*stmt.rhs, env), env);
    return;
  }
  std::vector<Matrix> values = evalMulti(*stmt.rhs, env, stmt.targets.size());
  if (values.size() < stmt.targets.size())
    throw RuntimeError("not enough output values for multi-assignment");
  for (std::size_t i = 0; i < stmt.targets.size(); ++i) {
    assignInto(stmt.targets[i], std::move(values[i]), env);
  }
}

void Interpreter::assignInto(const LValue& target, Matrix value, Env& env) {
  if (target.indices.empty()) {
    env.vars[target.name] = std::move(value);
    return;
  }
  Matrix& base = env.vars[target.name];  // default-constructs empty for growth
  indexAssign(base, target.indices, value, env);
}

Matrix Interpreter::eval(const Expr& expr, Env& env) {
  std::vector<Matrix> vals = evalMulti(expr, env, 1);
  if (vals.empty()) throw RuntimeError("expression produced no value");
  return std::move(vals[0]);
}

std::vector<Matrix> Interpreter::evalMulti(const Expr& expr, Env& env, std::size_t nOut) {
  step();
  switch (expr.kind) {
    case NodeKind::NumberLit: {
      const auto& e = static_cast<const NumberLit&>(expr);
      if (e.imaginary) return {Matrix::scalar(Complex{0.0, e.value})};
      return {Matrix::scalar(e.value)};
    }
    case NodeKind::StringLit:
      return {Matrix::fromString(static_cast<const StringLit&>(expr).value)};
    case NodeKind::Ident: {
      const auto& e = static_cast<const Ident&>(expr);
      auto it = env.vars.find(e.name);
      if (it != env.vars.end()) return {it->second};
      // Zero-argument call: user function or builtin constant.
      if (program_.findFunction(e.name)) return callFunction(e.name, {}, nOut);
      auto bit = builtinRuntime().find(e.name);
      if (bit != builtinRuntime().end()) return bit->second({}, nOut);
      throw RuntimeError("undefined variable or function '" + e.name + "'");
    }
    case NodeKind::Unary: {
      const auto& e = static_cast<const Unary&>(expr);
      Matrix v = eval(*e.operand, env);
      switch (e.op) {
        case UnaryOp::Neg: return {negate(v)};
        case UnaryOp::Plus: return {std::move(v)};
        case UnaryOp::Not: return {logicalNot(v)};
      }
      throw RuntimeError("bad unary op");
    }
    case NodeKind::Binary:
      return {evalBinary(static_cast<const Binary&>(expr), env)};
    case NodeKind::Transpose: {
      const auto& e = static_cast<const Transpose&>(expr);
      return {transpose(eval(*e.operand, env), e.conjugate)};
    }
    case NodeKind::Range:
      return {evalRange(static_cast<const Range&>(expr), env)};
    case NodeKind::MatrixLit:
      return {evalMatrixLit(static_cast<const MatrixLit&>(expr), env)};
    case NodeKind::CallIndex:
      return evalCallIndex(static_cast<const CallIndex&>(expr), env, nOut);
    case NodeKind::Colon:
    case NodeKind::End:
      throw RuntimeError("':'/'end' outside of an index expression");
    default:
      throw RuntimeError(std::string("cannot evaluate node ") + toString(expr.kind));
  }
}

Matrix Interpreter::evalBinary(const Binary& expr, Env& env) {
  // Short-circuit forms evaluate scalars lazily.
  if (expr.op == BinaryOp::AndAnd) {
    if (!eval(*expr.lhs, env).truthy()) return Matrix::logicalScalar(false);
    return Matrix::logicalScalar(eval(*expr.rhs, env).truthy());
  }
  if (expr.op == BinaryOp::OrOr) {
    if (eval(*expr.lhs, env).truthy()) return Matrix::logicalScalar(true);
    return Matrix::logicalScalar(eval(*expr.rhs, env).truthy());
  }

  Matrix a = eval(*expr.lhs, env);
  Matrix b = eval(*expr.rhs, env);
  switch (expr.op) {
    case BinaryOp::Add: return elementwise(ElemOp::Add, a, b);
    case BinaryOp::Sub: return elementwise(ElemOp::Sub, a, b);
    case BinaryOp::ElemMul: return elementwise(ElemOp::Mul, a, b);
    case BinaryOp::ElemDiv: return elementwise(ElemOp::Div, a, b);
    case BinaryOp::ElemLeftDiv: return elementwise(ElemOp::LeftDiv, a, b);
    case BinaryOp::ElemPow: return elementwise(ElemOp::Pow, a, b);
    case BinaryOp::MatMul: return matmul(a, b);
    case BinaryOp::MatDiv:
      if (b.isScalar()) return elementwise(ElemOp::Div, a, b);
      throw RuntimeError("matrix right division is not supported (use ./ or a solver)");
    case BinaryOp::MatLeftDiv:
      if (a.isScalar()) return elementwise(ElemOp::LeftDiv, a, b);
      throw RuntimeError("matrix left division is not supported");
    case BinaryOp::MatPow:
      if (a.isScalar() && b.isScalar()) return elementwise(ElemOp::Pow, a, b);
      throw RuntimeError("matrix power is only supported for scalars");
    case BinaryOp::Eq: return elementwise(ElemOp::Eq, a, b);
    case BinaryOp::Ne: return elementwise(ElemOp::Ne, a, b);
    case BinaryOp::Lt: return elementwise(ElemOp::Lt, a, b);
    case BinaryOp::Le: return elementwise(ElemOp::Le, a, b);
    case BinaryOp::Gt: return elementwise(ElemOp::Gt, a, b);
    case BinaryOp::Ge: return elementwise(ElemOp::Ge, a, b);
    case BinaryOp::And: return elementwise(ElemOp::And, a, b);
    case BinaryOp::Or: return elementwise(ElemOp::Or, a, b);
    default:
      throw RuntimeError("bad binary op");
  }
}

Matrix Interpreter::evalRange(const Range& expr, Env& env) {
  double start = eval(*expr.start, env).scalarValue();
  double step = expr.step ? eval(*expr.step, env).scalarValue() : 1.0;
  double stop = eval(*expr.stop, env).scalarValue();
  return Matrix::range(start, step, stop);
}

Matrix Interpreter::evalMatrixLit(const MatrixLit& expr, Env& env) {
  // Evaluate all elements; concatenate rows horizontally then stack rows.
  std::vector<std::vector<Matrix>> rows;
  rows.reserve(expr.rows.size());
  for (const auto& row : expr.rows) {
    std::vector<Matrix> vals;
    vals.reserve(row.size());
    for (const auto& el : row) vals.push_back(eval(*el, env));
    rows.push_back(std::move(vals));
  }
  // Horizontal concat per row.
  std::vector<Matrix> rowMats;
  for (auto& vals : rows) {
    std::size_t height = 0;
    std::size_t width = 0;
    bool cplx = false;
    for (auto& v : vals) {
      if (v.empty()) continue;
      if (height == 0) height = v.rows();
      if (v.rows() != height)
        throw RuntimeError("matrix literal: inconsistent row heights");
      width += v.cols();
      cplx = cplx || v.isComplex();
    }
    Matrix rowMat = Matrix::zeros(height, width, cplx);
    std::size_t colAt = 0;
    for (auto& v : vals) {
      if (v.empty()) continue;
      for (std::size_t c = 0; c < v.cols(); ++c)
        for (std::size_t r = 0; r < v.rows(); ++r) rowMat.set(r, colAt + c, v.at(r, c));
      colAt += v.cols();
    }
    if (width > 0) rowMats.push_back(std::move(rowMat));
  }
  // Vertical stack.
  std::size_t width = 0;
  std::size_t height = 0;
  bool cplx = false;
  for (auto& m : rowMats) {
    if (width == 0) width = m.cols();
    if (m.cols() != width) throw RuntimeError("matrix literal: inconsistent column widths");
    height += m.rows();
    cplx = cplx || m.isComplex();
  }
  Matrix out = Matrix::zeros(height, width, cplx);
  std::size_t rowAt = 0;
  for (auto& m : rowMats) {
    for (std::size_t c = 0; c < m.cols(); ++c)
      for (std::size_t r = 0; r < m.rows(); ++r) out.set(rowAt + r, c, m.at(r, c));
    rowAt += m.rows();
  }
  out.dropZeroImag();
  return out;
}

namespace {

/// True when the expression tree contains an `end` marker (a(end-1), ...).
bool containsEnd(const Expr& e) {
  switch (e.kind) {
    case NodeKind::End:
      return true;
    case NodeKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      return containsEnd(*b.lhs) || containsEnd(*b.rhs);
    }
    case NodeKind::Unary:
      return containsEnd(*static_cast<const Unary&>(e).operand);
    case NodeKind::Range: {
      const auto& r = static_cast<const Range&>(e);
      return containsEnd(*r.start) || (r.step && containsEnd(*r.step)) ||
             containsEnd(*r.stop);
    }
    default:
      // `end` inside nested CallIndex args refers to that inner base, which
      // the inner indexing evaluation binds itself.
      return false;
  }
}

}  // namespace

std::vector<std::size_t> Interpreter::resolveIndex(const Expr& arg, Env& env,
                                                   std::size_t extent) {
  if (arg.kind == NodeKind::Colon) {
    std::vector<std::size_t> all(extent);
    for (std::size_t i = 0; i < extent; ++i) all[i] = i;
    return all;
  }
  // `end` can appear inside arithmetic, e.g. a(end-1). Bind it by evaluating
  // with a shadow variable that the End node reads.
  struct EndBinder {
    Interpreter& interp;
    Env& env;
    std::size_t extent;
    Matrix evalWithEnd(const Expr& e) {
      // Substitute End nodes during evaluation via a recursive re-dispatch.
      switch (e.kind) {
        case NodeKind::End:
          return Matrix::scalar(static_cast<double>(extent));
        case NodeKind::Binary: {
          const auto& b = static_cast<const Binary&>(e);
          // Rebuild a temporary Binary evaluation over resolved operands.
          Matrix lhs = evalWithEnd(*b.lhs);
          Matrix rhs = evalWithEnd(*b.rhs);
          switch (b.op) {
            case BinaryOp::Add: return elementwise(ElemOp::Add, lhs, rhs);
            case BinaryOp::Sub: return elementwise(ElemOp::Sub, lhs, rhs);
            case BinaryOp::ElemMul: return elementwise(ElemOp::Mul, lhs, rhs);
            case BinaryOp::MatMul: return matmul(lhs, rhs);
            case BinaryOp::ElemDiv: return elementwise(ElemOp::Div, lhs, rhs);
            case BinaryOp::MatDiv:
              if (rhs.isScalar()) return elementwise(ElemOp::Div, lhs, rhs);
              throw RuntimeError("unsupported op on 'end' expression");
            default:
              throw RuntimeError("unsupported op on 'end' expression");
          }
        }
        case NodeKind::Unary: {
          const auto& u = static_cast<const Unary&>(e);
          if (u.op == UnaryOp::Neg) return negate(evalWithEnd(*u.operand));
          throw RuntimeError("unsupported unary op on 'end' expression");
        }
        case NodeKind::Range: {
          const auto& r = static_cast<const Range&>(e);
          double start = evalWithEnd(*r.start).scalarValue();
          double step = r.step ? evalWithEnd(*r.step).scalarValue() : 1.0;
          double stop = evalWithEnd(*r.stop).scalarValue();
          return Matrix::range(start, step, stop);
        }
        default:
          return interp.eval(e, env);
      }
    }
  };
  Matrix idx;
  if (containsEnd(arg)) {
    EndBinder binder{*this, env, extent};
    idx = binder.evalWithEnd(arg);
  } else {
    idx = eval(arg, env);
  }

  std::vector<std::size_t> out;
  if (idx.isLogical()) {
    if (idx.numel() > extent) throw RuntimeError("logical index too long");
    for (std::size_t i = 0; i < idx.numel(); ++i) {
      if (idx.real(i) != 0.0) out.push_back(i);
    }
    return out;
  }
  out.reserve(idx.numel());
  for (std::size_t i = 0; i < idx.numel(); ++i) {
    double v = idx.real(i);
    if (v < 1.0 || v != std::floor(v))
      throw RuntimeError("index must be a positive integer, got " + std::to_string(v));
    out.push_back(static_cast<std::size_t>(v) - 1);
  }
  return out;
}

Matrix Interpreter::indexMatrix(const Matrix& base, const std::vector<ExprPtr>& args, Env& env) {
  if (args.empty()) return base;
  if (args.size() == 1) {
    bool isColon = args[0]->kind == NodeKind::Colon;
    std::vector<std::size_t> idx = resolveIndex(*args[0], env, base.numel());
    for (std::size_t i : idx) {
      if (i >= base.numel())
        throw RuntimeError("index " + std::to_string(i + 1) + " out of bounds for " +
                           std::to_string(base.numel()) + " elements");
    }
    // Result orientation: A(:) is a column; otherwise follows the index shape
    // for vectors (row base + row index -> row).
    bool rowResult = !isColon && (base.isRow() || !base.isVector());
    Matrix out = Matrix::zeros(rowResult ? 1 : idx.size(), rowResult ? idx.size() : 1,
                               base.isComplex());
    if (isColon) out = Matrix::zeros(idx.size(), idx.empty() ? 0 : 1, base.isComplex());
    for (std::size_t i = 0; i < idx.size(); ++i) out.set(i, base.at(idx[i]));
    out.dropZeroImag();
    return out;
  }
  if (args.size() != 2) throw RuntimeError("only 1-D and 2-D indexing are supported");
  std::vector<std::size_t> ri = resolveIndex(*args[0], env, base.rows());
  std::vector<std::size_t> ci = resolveIndex(*args[1], env, base.cols());
  for (std::size_t r : ri)
    if (r >= base.rows()) throw RuntimeError("row index out of bounds");
  for (std::size_t c : ci)
    if (c >= base.cols()) throw RuntimeError("column index out of bounds");
  Matrix out = Matrix::zeros(ri.size(), ci.size(), base.isComplex());
  for (std::size_t c = 0; c < ci.size(); ++c)
    for (std::size_t r = 0; r < ri.size(); ++r) out.set(r, c, base.at(ri[r], ci[c]));
  out.dropZeroImag();
  return out;
}

void Interpreter::indexAssign(Matrix& base, const std::vector<ExprPtr>& args,
                              const Matrix& value, Env& env) {
  if (args.size() == 1) {
    std::vector<std::size_t> idx = resolveIndex(*args[0], env, base.numel());
    // Growth: only vectors (or empty) may grow via linear indexing.
    std::size_t needed = 0;
    for (std::size_t i : idx) needed = std::max(needed, i + 1);
    if (needed > base.numel()) {
      if (base.empty()) {
        base.resizePreserving(1, needed);
      } else if (base.isRow()) {
        base.resizePreserving(1, needed);
      } else if (base.cols() == 1) {
        base.resizePreserving(needed, 1);
      } else {
        throw RuntimeError("linear index out of bounds for matrix assignment");
      }
    }
    if (!value.isScalar() && value.numel() != idx.size())
      throw RuntimeError("assignment size mismatch");
    for (std::size_t i = 0; i < idx.size(); ++i) {
      base.set(idx[i], value.isScalar() ? value.at(0) : value.at(i));
    }
    return;
  }
  if (args.size() != 2) throw RuntimeError("only 1-D and 2-D indexing are supported");
  std::vector<std::size_t> ri = resolveIndex(*args[0], env, base.rows());
  std::vector<std::size_t> ci = resolveIndex(*args[1], env, base.cols());
  std::size_t needR = base.rows();
  std::size_t needC = base.cols();
  for (std::size_t r : ri) needR = std::max(needR, r + 1);
  for (std::size_t c : ci) needC = std::max(needC, c + 1);
  if (needR > base.rows() || needC > base.cols()) base.resizePreserving(needR, needC);
  if (!value.isScalar() && value.numel() != ri.size() * ci.size())
    throw RuntimeError("assignment size mismatch");
  for (std::size_t c = 0; c < ci.size(); ++c) {
    for (std::size_t r = 0; r < ri.size(); ++r) {
      Complex v = value.isScalar() ? value.at(0) : value.at(r + c * ri.size());
      base.set(ri[r], ci[c], v);
    }
  }
}

std::vector<Matrix> Interpreter::evalCallIndex(const CallIndex& expr, Env& env,
                                               std::size_t nOut) {
  if (expr.base->kind != NodeKind::Ident) {
    // Indexing an arbitrary expression: evaluate then index.
    Matrix base = eval(*expr.base, env);
    return {indexMatrix(base, expr.args, env)};
  }
  const std::string& name = static_cast<const Ident&>(*expr.base).name;

  // Variables shadow functions (MATLAB resolution order).
  auto it = env.vars.find(name);
  if (it != env.vars.end()) return {indexMatrix(it->second, expr.args, env)};

  std::vector<Matrix> argVals;
  argVals.reserve(expr.args.size());
  for (const auto& a : expr.args) {
    if (a->kind == NodeKind::Colon || a->kind == NodeKind::End)
      throw RuntimeError("':'/'end' used in a call to undefined variable '" + name + "'");
    argVals.push_back(eval(*a, env));
  }
  if (program_.findFunction(name)) return callFunction(name, argVals, nOut);
  auto bit = builtinRuntime().find(name);
  if (bit != builtinRuntime().end()) return bit->second(argVals, nOut);
  throw RuntimeError("undefined variable or function '" + name + "'");
}

}  // namespace mat2c
