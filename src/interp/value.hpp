// MATLAB value semantics for the reference interpreter.
//
// A Matrix is a 2-D, column-major array of double or complex<double>
// elements, with flags distinguishing logical results and char rows
// (strings). Scalars are 1x1 matrices; the empty matrix is 0x0.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace mat2c {

using Complex = std::complex<double>;

/// Thrown by interpreter/runtime operations on MATLAB-semantics errors
/// (dimension mismatch, bad index, ...).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(std::string what) : std::runtime_error(std::move(what)) {}
};

class Matrix {
 public:
  /// 0x0 empty real matrix.
  Matrix() = default;

  static Matrix scalar(double v);
  static Matrix scalar(Complex v);
  static Matrix logicalScalar(bool v);
  static Matrix zeros(std::size_t rows, std::size_t cols, bool complex = false);
  static Matrix fromString(const std::string& s);
  /// Row vector from doubles.
  static Matrix rowVector(const std::vector<double>& v);
  static Matrix colVector(const std::vector<double>& v);
  /// start:step:stop (MATLAB colon semantics, empty when the range is empty).
  static Matrix range(double start, double step, double stop);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }
  bool isScalar() const { return rows_ == 1 && cols_ == 1; }
  bool isVector() const { return rows_ == 1 || cols_ == 1; }
  bool isRow() const { return rows_ == 1; }
  bool isComplex() const { return complex_; }
  bool isLogical() const { return logical_; }
  bool isString() const { return string_; }

  void setLogical(bool v) { logical_ = v; }
  void setString(bool v) { string_ = v; }

  /// Linear element access, 0-based internally.
  double real(std::size_t i) const { return re_[i]; }
  double imag(std::size_t i) const { return complex_ ? im_[i] : 0.0; }
  Complex at(std::size_t i) const { return {re_[i], imag(i)}; }
  Complex at(std::size_t r, std::size_t c) const { return at(r + c * rows_); }
  void set(std::size_t i, Complex v);
  void set(std::size_t r, std::size_t c, Complex v) { set(r + c * rows_, v); }

  /// Scalar extraction; throws unless 1x1.
  double scalarValue() const;
  Complex complexScalarValue() const;
  /// MATLAB truthiness: all elements nonzero and non-empty.
  bool truthy() const;

  /// Widens storage to complex in place.
  void makeComplex();
  /// Drops a zero imaginary part (used so `ifft(fft(x))` compares real).
  void dropZeroImag();

  /// String contents; throws unless isString().
  std::string stringValue() const;

  const std::vector<double>& realData() const { return re_; }
  const std::vector<double>& imagData() const { return im_; }

  /// Resizes preserving elements at their (row, col) positions; new cells 0.
  void resizePreserving(std::size_t rows, std::size_t cols);

  /// Rendered like a MATLAB value dump — used in tests/diagnostics.
  std::string toString() const;

  friend bool operator==(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  bool complex_ = false;
  bool logical_ = false;
  bool string_ = false;
  std::vector<double> re_;
  std::vector<double> im_;  // same length as re_ when complex_
};

// -- elementwise / structural operations used by interpreter & builtins ------

enum class ElemOp { Add, Sub, Mul, Div, LeftDiv, Pow, Eq, Ne, Lt, Le, Gt, Ge, And, Or };

/// Elementwise with MATLAB scalar expansion; throws on shape mismatch.
Matrix elementwise(ElemOp op, const Matrix& a, const Matrix& b);
Matrix matmul(const Matrix& a, const Matrix& b);
Matrix transpose(const Matrix& a, bool conjugate);
Matrix negate(const Matrix& a);
Matrix logicalNot(const Matrix& a);

/// Map a unary function over elements (complex-aware callers pass cf).
Matrix mapUnary(const Matrix& a, double (*f)(double));
Matrix mapUnaryComplex(const Matrix& a, Complex (*f)(Complex));

/// Maximum absolute difference between two same-shaped values; used as the
/// correctness gate when validating compiled code against the interpreter.
double maxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace mat2c
