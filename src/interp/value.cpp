#include "interp/value.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/string_utils.hpp"

namespace mat2c {

Matrix Matrix::scalar(double v) {
  Matrix m;
  m.rows_ = m.cols_ = 1;
  m.re_ = {v};
  return m;
}

Matrix Matrix::scalar(Complex v) {
  Matrix m;
  m.rows_ = m.cols_ = 1;
  m.re_ = {v.real()};
  if (v.imag() != 0.0) {
    m.complex_ = true;
    m.im_ = {v.imag()};
  }
  return m;
}

Matrix Matrix::logicalScalar(bool v) {
  Matrix m = scalar(v ? 1.0 : 0.0);
  m.logical_ = true;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols, bool complex) {
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.re_.assign(rows * cols, 0.0);
  if (complex) {
    m.complex_ = true;
    m.im_.assign(rows * cols, 0.0);
  }
  return m;
}

Matrix Matrix::fromString(const std::string& s) {
  Matrix m;
  m.rows_ = s.empty() ? 0 : 1;
  m.cols_ = s.size();
  m.re_.reserve(s.size());
  for (char c : s) m.re_.push_back(static_cast<double>(static_cast<unsigned char>(c)));
  m.string_ = true;
  return m;
}

Matrix Matrix::rowVector(const std::vector<double>& v) {
  Matrix m;
  m.rows_ = v.empty() ? 0 : 1;
  m.cols_ = v.size();
  m.re_ = v;
  return m;
}

Matrix Matrix::colVector(const std::vector<double>& v) {
  Matrix m = rowVector(v);
  std::swap(m.rows_, m.cols_);
  return m;
}

Matrix Matrix::range(double start, double step, double stop) {
  Matrix m;
  if (step == 0.0) return m;  // MATLAB: empty
  double n = std::floor((stop - start) / step + 1e-10) + 1.0;
  if (n <= 0.0) return m;
  auto count = static_cast<std::size_t>(n);
  m.rows_ = 1;
  m.cols_ = count;
  m.re_.resize(count);
  for (std::size_t i = 0; i < count; ++i) m.re_[i] = start + static_cast<double>(i) * step;
  return m;
}

void Matrix::set(std::size_t i, Complex v) {
  if (v.imag() != 0.0 && !complex_) makeComplex();
  re_[i] = v.real();
  if (complex_) im_[i] = v.imag();
}

double Matrix::scalarValue() const {
  if (!isScalar()) throw RuntimeError("expected a scalar value, got " + std::to_string(rows_) +
                                      "x" + std::to_string(cols_));
  if (complex_ && im_[0] != 0.0)
    throw RuntimeError("expected a real scalar, got a complex value");
  return re_[0];
}

Complex Matrix::complexScalarValue() const {
  if (!isScalar()) throw RuntimeError("expected a scalar value");
  return at(0);
}

bool Matrix::truthy() const {
  if (empty()) return false;
  for (std::size_t i = 0; i < numel(); ++i) {
    if (re_[i] == 0.0 && imag(i) == 0.0) return false;
  }
  return true;
}

void Matrix::makeComplex() {
  if (complex_) return;
  complex_ = true;
  im_.assign(re_.size(), 0.0);
}

void Matrix::dropZeroImag() {
  if (!complex_) return;
  for (double v : im_) {
    if (v != 0.0) return;
  }
  complex_ = false;
  im_.clear();
}

std::string Matrix::stringValue() const {
  if (!string_) throw RuntimeError("expected a string value");
  std::string s;
  s.reserve(numel());
  for (double v : re_) s += static_cast<char>(static_cast<int>(v));
  return s;
}

void Matrix::resizePreserving(std::size_t rows, std::size_t cols) {
  Matrix out = zeros(rows, cols, complex_);
  out.logical_ = logical_;
  std::size_t rCopy = std::min(rows, rows_);
  std::size_t cCopy = std::min(cols, cols_);
  for (std::size_t c = 0; c < cCopy; ++c) {
    for (std::size_t r = 0; r < rCopy; ++r) {
      out.re_[r + c * rows] = re_[r + c * rows_];
      if (complex_) out.im_[r + c * rows] = im_[r + c * rows_];
    }
  }
  *this = std::move(out);
}

std::string Matrix::toString() const {
  if (string_) return "'" + stringValue() + "'";
  std::ostringstream os;
  os << rows_ << "x" << cols_ << (complex_ ? " complex" : "") << (logical_ ? " logical" : "")
     << " [";
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r) os << "; ";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << formatDouble(re_[r + c * rows_]);
      if (complex_ && im_[r + c * rows_] != 0.0) {
        double v = im_[r + c * rows_];
        os << (v >= 0 ? "+" : "-") << formatDouble(std::abs(v)) << "i";
      }
    }
  }
  os << "]";
  return os.str();
}

bool operator==(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (a.at(i) != b.at(i)) return false;
  }
  return true;
}

namespace {

Complex applyScalar(ElemOp op, Complex a, Complex b, bool& logicalOut) {
  logicalOut = false;
  switch (op) {
    case ElemOp::Add: return a + b;
    case ElemOp::Sub: return a - b;
    case ElemOp::Mul: return a * b;
    case ElemOp::Div: return a / b;
    case ElemOp::LeftDiv: return b / a;
    case ElemOp::Pow: {
      if (a.imag() == 0.0 && b.imag() == 0.0) {
        double base = a.real();
        double expo = b.real();
        if (base >= 0.0 || expo == std::floor(expo)) return {std::pow(base, expo), 0.0};
      }
      return std::pow(a, b);
    }
    case ElemOp::Eq: logicalOut = true; return {a == b ? 1.0 : 0.0, 0.0};
    case ElemOp::Ne: logicalOut = true; return {a != b ? 1.0 : 0.0, 0.0};
    // Relational ops compare real parts (MATLAB semantics).
    case ElemOp::Lt: logicalOut = true; return {a.real() < b.real() ? 1.0 : 0.0, 0.0};
    case ElemOp::Le: logicalOut = true; return {a.real() <= b.real() ? 1.0 : 0.0, 0.0};
    case ElemOp::Gt: logicalOut = true; return {a.real() > b.real() ? 1.0 : 0.0, 0.0};
    case ElemOp::Ge: logicalOut = true; return {a.real() >= b.real() ? 1.0 : 0.0, 0.0};
    case ElemOp::And:
      logicalOut = true;
      return {(a != Complex{} && b != Complex{}) ? 1.0 : 0.0, 0.0};
    case ElemOp::Or:
      logicalOut = true;
      return {(a != Complex{} || b != Complex{}) ? 1.0 : 0.0, 0.0};
  }
  throw RuntimeError("bad elementwise op");
}

}  // namespace

Matrix elementwise(ElemOp op, const Matrix& a, const Matrix& b) {
  const bool aScalar = a.isScalar();
  const bool bScalar = b.isScalar();
  if (!aScalar && !bScalar && (a.rows() != b.rows() || a.cols() != b.cols())) {
    throw RuntimeError("matrix dimensions must agree: " + std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + " vs " + std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  }
  std::size_t rows = aScalar ? b.rows() : a.rows();
  std::size_t cols = aScalar ? b.cols() : a.cols();
  Matrix out = Matrix::zeros(rows, cols);
  bool anyLogical = false;
  for (std::size_t i = 0; i < rows * cols; ++i) {
    Complex av = aScalar ? a.at(0) : a.at(i);
    Complex bv = bScalar ? b.at(0) : b.at(i);
    bool logicalOut = false;
    out.set(i, applyScalar(op, av, bv, logicalOut));
    anyLogical = logicalOut;
  }
  out.setLogical(anyLogical);
  out.dropZeroImag();
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.isScalar() || b.isScalar()) return elementwise(ElemOp::Mul, a, b);
  if (a.cols() != b.rows()) {
    throw RuntimeError("inner matrix dimensions must agree: " + std::to_string(a.cols()) +
                       " vs " + std::to_string(b.rows()));
  }
  bool cplx = a.isComplex() || b.isComplex();
  Matrix out = Matrix::zeros(a.rows(), b.cols(), cplx);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      Complex bkj = b.at(k, j);
      if (bkj == Complex{}) continue;
      for (std::size_t i = 0; i < a.rows(); ++i) {
        out.set(i, j, out.at(i, j) + a.at(i, k) * bkj);
      }
    }
  }
  out.dropZeroImag();
  return out;
}

Matrix transpose(const Matrix& a, bool conjugate) {
  Matrix out = Matrix::zeros(a.cols(), a.rows(), a.isComplex());
  for (std::size_t c = 0; c < a.cols(); ++c) {
    for (std::size_t r = 0; r < a.rows(); ++r) {
      Complex v = a.at(r, c);
      out.set(c, r, conjugate ? std::conj(v) : v);
    }
  }
  return out;
}

Matrix negate(const Matrix& a) {
  Matrix out = Matrix::zeros(a.rows(), a.cols(), a.isComplex());
  for (std::size_t i = 0; i < a.numel(); ++i) out.set(i, -a.at(i));
  return out;
}

Matrix logicalNot(const Matrix& a) {
  Matrix out = Matrix::zeros(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.numel(); ++i)
    out.set(i, Complex{a.at(i) == Complex{} ? 1.0 : 0.0, 0.0});
  out.setLogical(true);
  return out;
}

Matrix mapUnary(const Matrix& a, double (*f)(double)) {
  if (a.isComplex()) throw RuntimeError("function not defined for complex arguments");
  Matrix out = Matrix::zeros(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.numel(); ++i) out.set(i, Complex{f(a.real(i)), 0.0});
  return out;
}

Matrix mapUnaryComplex(const Matrix& a, Complex (*f)(Complex)) {
  Matrix out = Matrix::zeros(a.rows(), a.cols(), /*complex=*/true);
  for (std::size_t i = 0; i < a.numel(); ++i) out.set(i, f(a.at(i)));
  out.dropZeroImag();
  return out;
}

double maxAbsDiff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw RuntimeError("maxAbsDiff: shape mismatch " + std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + " vs " + std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a.at(i) - b.at(i)));
  }
  return worst;
}

}  // namespace mat2c
