// Builtin-function catalog for the reference interpreter.
//
// Implements the MATLAB builtins the DSP-kernel domain needs. FFT/IFFT are
// direct radix-2 (power-of-two) with an O(n^2) DFT fallback, which keeps the
// oracle simple and obviously correct.
#include <algorithm>
#include <cmath>
#include <numbers>

#include "interp/interpreter.hpp"

namespace mat2c {
namespace {

void requireArgs(const std::vector<Matrix>& args, std::size_t lo, std::size_t hi,
                 const char* name) {
  if (args.size() < lo || args.size() > hi) {
    throw RuntimeError(std::string(name) + ": wrong number of arguments");
  }
}

std::vector<Matrix> one(Matrix m) {
  std::vector<Matrix> out;
  out.push_back(std::move(m));
  return out;
}

Matrix mapC(const Matrix& a, Complex (*f)(Complex)) { return mapUnaryComplex(a, f); }

// zeros/ones/eye share the size-argument convention: (), (n), (m, n).
Matrix sized(const std::vector<Matrix>& args, const char* name, double fill) {
  std::size_t m = 1;
  std::size_t n = 1;
  if (args.size() == 1) {
    double v = args[0].scalarValue();
    if (v < 0) v = 0;
    m = n = static_cast<std::size_t>(v);
  } else if (args.size() == 2) {
    double mv = args[0].scalarValue();
    double nv = args[1].scalarValue();
    m = static_cast<std::size_t>(std::max(0.0, mv));
    n = static_cast<std::size_t>(std::max(0.0, nv));
  } else if (args.size() > 2) {
    throw RuntimeError(std::string(name) + ": only 2-D arrays are supported");
  }
  Matrix out = Matrix::zeros(m, n);
  if (fill != 0.0) {
    for (std::size_t i = 0; i < out.numel(); ++i) out.set(i, Complex{fill, 0.0});
  }
  return out;
}

// Reduction over the "MATLAB default" dimension: columns of a matrix, the
// vector itself for row/column vectors.
template <typename Fold>
Matrix reduce(const Matrix& a, Fold fold, Complex init, bool emptyIsInit) {
  if (a.empty()) {
    if (emptyIsInit) return Matrix::scalar(init);
    return Matrix();
  }
  if (a.isVector()) {
    Complex acc = init;
    for (std::size_t i = 0; i < a.numel(); ++i) acc = fold(acc, a.at(i));
    return Matrix::scalar(acc);
  }
  Matrix out = Matrix::zeros(1, a.cols(), a.isComplex());
  for (std::size_t c = 0; c < a.cols(); ++c) {
    Complex acc = init;
    for (std::size_t r = 0; r < a.rows(); ++r) acc = fold(acc, a.at(r, c));
    out.set(0, c, acc);
  }
  out.dropZeroImag();
  return out;
}

// min/max: one-arg reduction (value + index) or two-arg elementwise.
std::vector<Matrix> minmax(const std::vector<Matrix>& args, std::size_t nOut, bool isMax) {
  const char* name = isMax ? "max" : "min";
  requireArgs(args, 1, 2, name);
  auto better = [isMax](double cand, double best) {
    return isMax ? cand > best : cand < best;
  };
  if (args.size() == 2) {
    const Matrix& a = args[0];
    const Matrix& b = args[1];
    if (a.isComplex() || b.isComplex())
      throw RuntimeError(std::string(name) + ": complex two-arg form not supported");
    const bool aS = a.isScalar();
    const bool bS = b.isScalar();
    if (!aS && !bS && (a.rows() != b.rows() || a.cols() != b.cols()))
      throw RuntimeError(std::string(name) + ": dimension mismatch");
    std::size_t rows = aS ? b.rows() : a.rows();
    std::size_t cols = aS ? b.cols() : a.cols();
    Matrix out = Matrix::zeros(rows, cols);
    for (std::size_t i = 0; i < rows * cols; ++i) {
      double av = aS ? a.real(0) : a.real(i);
      double bv = bS ? b.real(0) : b.real(i);
      out.set(i, Complex{better(av, bv) ? av : bv, 0.0});
    }
    return one(std::move(out));
  }
  const Matrix& a = args[0];
  if (a.empty()) return one(Matrix());
  auto key = [&](std::size_t i) {
    // MATLAB compares complex values by magnitude for min/max.
    return a.isComplex() ? std::abs(a.at(i)) : a.real(i);
  };
  if (a.isVector()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < a.numel(); ++i) {
      if (better(key(i), key(best))) best = i;
    }
    std::vector<Matrix> out = one(Matrix::scalar(a.at(best)));
    if (nOut >= 2) out.push_back(Matrix::scalar(static_cast<double>(best + 1)));
    return out;
  }
  Matrix vals = Matrix::zeros(1, a.cols(), a.isComplex());
  Matrix idxs = Matrix::zeros(1, a.cols());
  for (std::size_t c = 0; c < a.cols(); ++c) {
    std::size_t best = 0;
    for (std::size_t r = 1; r < a.rows(); ++r) {
      if (better(a.isComplex() ? std::abs(a.at(r, c)) : a.real(r + c * a.rows()),
                 a.isComplex() ? std::abs(a.at(best, c)) : a.real(best + c * a.rows())))
        best = r;
    }
    vals.set(0, c, a.at(best, c));
    idxs.set(0, c, Complex{static_cast<double>(best + 1), 0.0});
  }
  vals.dropZeroImag();
  std::vector<Matrix> out = one(std::move(vals));
  if (nOut >= 2) out.push_back(std::move(idxs));
  return out;
}

// Radix-2 FFT on a length-n buffer; n must be a power of two.
void fftRadix2(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    double ang = 2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    Complex wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex u = a[i + k];
        Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

// One length-m transform in place; radix-2 when m is a power of two,
// O(m^2) DFT otherwise.
void fftBuffer(std::vector<Complex>& buf, bool inverse) {
  const std::size_t m = buf.size();
  if (m != 0 && (m & (m - 1)) == 0) {
    fftRadix2(buf, inverse);
    return;
  }
  std::vector<Complex> out(m);
  double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < m; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t t = 0; t < m; ++t) {
      double ang = sign * 2.0 * std::numbers::pi * static_cast<double>(k) *
                   static_cast<double>(t) / static_cast<double>(m);
      acc += buf[t] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(m) : acc;
  }
  buf = std::move(out);
}

// MATLAB semantics: vectors transform along their length keeping orientation
// (scalars count as rows), matrices column-wise. n > 0 zero-pads or truncates
// every transform to length n.
Matrix fftImpl(const Matrix& in, bool inverse, std::size_t n = 0) {
  const bool vec = in.isVector() || in.empty();
  const std::size_t inLen = vec ? in.numel() : in.rows();
  const std::size_t m = n ? n : inLen;
  const std::size_t cols = vec ? (m ? 1 : 0) : in.cols();
  const bool colVec = vec && in.rows() > 1;

  Matrix out = vec ? Matrix::zeros(colVec ? m : (m ? 1 : 0), colVec ? (m ? 1 : 0) : m,
                                   /*complex=*/true)
                   : Matrix::zeros(m, cols, /*complex=*/true);
  std::vector<Complex> buf;
  for (std::size_t c = 0; c < cols; ++c) {
    buf.assign(m, Complex{0.0, 0.0});
    for (std::size_t i = 0; i < std::min(inLen, m); ++i)
      buf[i] = vec ? in.at(i) : in.at(i, c);
    fftBuffer(buf, inverse);
    for (std::size_t k = 0; k < m; ++k) {
      if (vec)
        out.set(k, buf[k]);
      else
        out.set(k, c, buf[k]);
    }
  }
  out.dropZeroImag();
  return out;
}

// Shared fft/ifft argument handling: optional second arg is the transform
// length, a positive integer.
std::size_t fftLengthArg(const std::vector<Matrix>& args, const char* name) {
  requireArgs(args, 1, 2, name);
  if (args.size() < 2) return 0;
  if (!args[1].isScalar())
    throw RuntimeError(std::string(name) + ": transform length must be a scalar");
  double v = args[1].scalarValue();
  if (!(v >= 1.0) || v != std::floor(v))
    throw RuntimeError(std::string(name) + ": transform length must be a positive integer");
  return static_cast<std::size_t>(v);
}

const std::map<std::string, BuiltinFn>& makeTable() {
  static const std::map<std::string, BuiltinFn> table = [] {
    std::map<std::string, BuiltinFn> t;

    t["pi"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 0, 0, "pi");
      return one(Matrix::scalar(std::numbers::pi));
    };
    t["eps"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 0, 0, "eps");
      return one(Matrix::scalar(2.220446049250313e-16));
    };
    t["zeros"] = [](const std::vector<Matrix>& args, std::size_t) {
      return one(sized(args, "zeros", 0.0));
    };
    t["ones"] = [](const std::vector<Matrix>& args, std::size_t) {
      return one(sized(args, "ones", 1.0));
    };
    t["eye"] = [](const std::vector<Matrix>& args, std::size_t) {
      Matrix m = sized(args, "eye", 0.0);
      for (std::size_t i = 0; i < std::min(m.rows(), m.cols()); ++i)
        m.set(i, i, Complex{1.0, 0.0});
      return one(std::move(m));
    };
    t["length"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "length");
      return one(Matrix::scalar(static_cast<double>(std::max(args[0].rows(), args[0].cols()))));
    };
    t["numel"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "numel");
      return one(Matrix::scalar(static_cast<double>(args[0].numel())));
    };
    t["size"] = [](const std::vector<Matrix>& args, std::size_t nOut) {
      requireArgs(args, 1, 2, "size");
      double m = static_cast<double>(args[0].rows());
      double n = static_cast<double>(args[0].cols());
      if (args.size() == 2) {
        double d = args[1].scalarValue();
        return one(Matrix::scalar(d == 1.0 ? m : (d == 2.0 ? n : 1.0)));
      }
      if (nOut >= 2) {
        std::vector<Matrix> out = one(Matrix::scalar(m));
        out.push_back(Matrix::scalar(n));
        return out;
      }
      Matrix both = Matrix::rowVector({m, n});
      return one(std::move(both));
    };
    t["isempty"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "isempty");
      return one(Matrix::logicalScalar(args[0].empty()));
    };
    t["isreal"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "isreal");
      return one(Matrix::logicalScalar(!args[0].isComplex()));
    };
    t["reshape"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 3, 3, "reshape");
      auto m = static_cast<std::size_t>(args[1].scalarValue());
      auto n = static_cast<std::size_t>(args[2].scalarValue());
      if (m * n != args[0].numel()) throw RuntimeError("reshape: element count mismatch");
      Matrix out = Matrix::zeros(m, n, args[0].isComplex());
      for (std::size_t i = 0; i < m * n; ++i) out.set(i, args[0].at(i));
      return one(std::move(out));
    };
    t["linspace"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 2, 3, "linspace");
      double a = args[0].scalarValue();
      double b = args[1].scalarValue();
      auto n = static_cast<std::size_t>(args.size() == 3 ? args[2].scalarValue() : 100);
      Matrix out = Matrix::zeros(1, n);
      for (std::size_t i = 0; i < n; ++i) {
        double frac = n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 1.0;
        out.set(i, Complex{a + (b - a) * frac, 0.0});
      }
      return one(std::move(out));
    };

    // -- reductions ---------------------------------------------------------
    t["sum"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "sum");
      return one(reduce(args[0], [](Complex a, Complex b) { return a + b; }, Complex{},
                        /*emptyIsInit=*/true));
    };
    t["prod"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "prod");
      return one(reduce(args[0], [](Complex a, Complex b) { return a * b; }, Complex{1.0, 0.0},
                        /*emptyIsInit=*/true));
    };
    t["mean"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "mean");
      const Matrix& a = args[0];
      Matrix s = reduce(a, [](Complex x, Complex y) { return x + y; }, Complex{}, true);
      double n = static_cast<double>(a.isVector() ? a.numel() : a.rows());
      return one(elementwise(ElemOp::Div, s, Matrix::scalar(n)));
    };
    t["min"] = [](const std::vector<Matrix>& args, std::size_t nOut) {
      return minmax(args, nOut, /*isMax=*/false);
    };
    t["max"] = [](const std::vector<Matrix>& args, std::size_t nOut) {
      return minmax(args, nOut, /*isMax=*/true);
    };
    t["any"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "any");
      Matrix r = reduce(args[0],
                        [](Complex a, Complex b) {
                          return Complex{(a != Complex{} || b != Complex{}) ? 1.0 : 0.0, 0.0};
                        },
                        Complex{}, true);
      r.setLogical(true);
      return one(std::move(r));
    };
    t["all"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "all");
      Matrix r = reduce(args[0],
                        [](Complex a, Complex b) {
                          return Complex{(a != Complex{} && b != Complex{}) ? 1.0 : 0.0, 0.0};
                        },
                        Complex{1.0, 0.0}, true);
      r.setLogical(true);
      return one(std::move(r));
    };
    t["norm"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "norm");
      if (!args[0].isVector() && !args[0].empty())
        throw RuntimeError("norm: only vectors supported");
      double acc = 0.0;
      for (std::size_t i = 0; i < args[0].numel(); ++i) acc += std::norm(args[0].at(i));
      return one(Matrix::scalar(std::sqrt(acc)));
    };
    t["dot"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 2, 2, "dot");
      const Matrix& a = args[0];
      const Matrix& b = args[1];
      if (a.numel() != b.numel()) throw RuntimeError("dot: length mismatch");
      Complex acc{};
      for (std::size_t i = 0; i < a.numel(); ++i) acc += std::conj(a.at(i)) * b.at(i);
      return one(Matrix::scalar(acc));
    };

    // -- scalar math mapped elementwise --------------------------------------
    t["abs"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "abs");
      Matrix out = Matrix::zeros(args[0].rows(), args[0].cols());
      for (std::size_t i = 0; i < args[0].numel(); ++i)
        out.set(i, Complex{std::abs(args[0].at(i)), 0.0});
      return one(std::move(out));
    };
    t["sqrt"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "sqrt");
      const Matrix& a = args[0];
      bool needComplex = a.isComplex();
      if (!needComplex) {
        for (std::size_t i = 0; i < a.numel(); ++i) {
          if (a.real(i) < 0.0) {
            needComplex = true;
            break;
          }
        }
      }
      if (!needComplex) return one(mapUnary(a, [](double v) { return std::sqrt(v); }));
      return one(mapC(a, [](Complex v) { return std::sqrt(v); }));
    };
    t["exp"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "exp");
      if (!args[0].isComplex())
        return one(mapUnary(args[0], [](double v) { return std::exp(v); }));
      return one(mapC(args[0], [](Complex v) { return std::exp(v); }));
    };
    t["log"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "log");
      if (!args[0].isComplex())
        return one(mapUnary(args[0], [](double v) { return std::log(v); }));
      return one(mapC(args[0], [](Complex v) { return std::log(v); }));
    };
    t["log2"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "log2");
      return one(mapUnary(args[0], [](double v) { return std::log2(v); }));
    };
    t["log10"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "log10");
      return one(mapUnary(args[0], [](double v) { return std::log10(v); }));
    };
    auto realFn = [](const char* name, double (*f)(double)) {
      return [name, f](const std::vector<Matrix>& args, std::size_t) {
        requireArgs(args, 1, 1, name);
        return one(mapUnary(args[0], f));
      };
    };
    t["sin"] = realFn("sin", [](double v) { return std::sin(v); });
    t["cos"] = realFn("cos", [](double v) { return std::cos(v); });
    t["tan"] = realFn("tan", [](double v) { return std::tan(v); });
    t["asin"] = realFn("asin", [](double v) { return std::asin(v); });
    t["acos"] = realFn("acos", [](double v) { return std::acos(v); });
    t["atan"] = realFn("atan", [](double v) { return std::atan(v); });
    t["floor"] = realFn("floor", [](double v) { return std::floor(v); });
    t["ceil"] = realFn("ceil", [](double v) { return std::ceil(v); });
    t["round"] = realFn("round", [](double v) { return std::round(v); });
    t["fix"] = realFn("fix", [](double v) { return std::trunc(v); });
    t["sign"] = realFn("sign", [](double v) { return v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0); });
    t["atan2"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 2, 2, "atan2");
      const Matrix& y = args[0];
      const Matrix& x = args[1];
      const bool yS = y.isScalar();
      const bool xS = x.isScalar();
      if (!yS && !xS && (y.rows() != x.rows() || y.cols() != x.cols()))
        throw RuntimeError("atan2: dimension mismatch");
      std::size_t rows = yS ? x.rows() : y.rows();
      std::size_t cols = yS ? x.cols() : y.cols();
      Matrix out = Matrix::zeros(rows, cols);
      for (std::size_t i = 0; i < rows * cols; ++i) {
        out.set(i, Complex{std::atan2(yS ? y.real(0) : y.real(i), xS ? x.real(0) : x.real(i)),
                           0.0});
      }
      return one(std::move(out));
    };
    t["mod"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 2, 2, "mod");
      const Matrix& a = args[0];
      const Matrix& b = args[1];
      const bool aS = a.isScalar();
      const bool bS = b.isScalar();
      std::size_t rows = aS ? b.rows() : a.rows();
      std::size_t cols = aS ? b.cols() : a.cols();
      Matrix out = Matrix::zeros(rows, cols);
      for (std::size_t i = 0; i < rows * cols; ++i) {
        double x = aS ? a.real(0) : a.real(i);
        double m = bS ? b.real(0) : b.real(i);
        double r = m == 0.0 ? x : x - std::floor(x / m) * m;
        out.set(i, Complex{r, 0.0});
      }
      return one(std::move(out));
    };
    t["rem"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 2, 2, "rem");
      const Matrix& a = args[0];
      const Matrix& b = args[1];
      const bool aS = a.isScalar();
      const bool bS = b.isScalar();
      std::size_t rows = aS ? b.rows() : a.rows();
      std::size_t cols = aS ? b.cols() : a.cols();
      Matrix out = Matrix::zeros(rows, cols);
      for (std::size_t i = 0; i < rows * cols; ++i) {
        double x = aS ? a.real(0) : a.real(i);
        double m = bS ? b.real(0) : b.real(i);
        out.set(i, Complex{m == 0.0 ? x : std::fmod(x, m), 0.0});
      }
      return one(std::move(out));
    };

    // -- complex support ------------------------------------------------------
    t["real"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "real");
      Matrix out = Matrix::zeros(args[0].rows(), args[0].cols());
      for (std::size_t i = 0; i < args[0].numel(); ++i)
        out.set(i, Complex{args[0].real(i), 0.0});
      return one(std::move(out));
    };
    t["imag"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "imag");
      Matrix out = Matrix::zeros(args[0].rows(), args[0].cols());
      for (std::size_t i = 0; i < args[0].numel(); ++i)
        out.set(i, Complex{args[0].imag(i), 0.0});
      return one(std::move(out));
    };
    t["conj"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "conj");
      return one(mapC(args[0], [](Complex v) { return std::conj(v); }));
    };
    t["angle"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "angle");
      Matrix out = Matrix::zeros(args[0].rows(), args[0].cols());
      for (std::size_t i = 0; i < args[0].numel(); ++i)
        out.set(i, Complex{std::arg(args[0].at(i)), 0.0});
      return one(std::move(out));
    };
    t["complex"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 2, 2, "complex");
      const Matrix& re = args[0];
      const Matrix& im = args[1];
      const bool rS = re.isScalar();
      const bool iS = im.isScalar();
      std::size_t rows = rS ? im.rows() : re.rows();
      std::size_t cols = rS ? im.cols() : re.cols();
      Matrix out = Matrix::zeros(rows, cols, /*complex=*/true);
      for (std::size_t i = 0; i < rows * cols; ++i) {
        out.set(i, Complex{rS ? re.real(0) : re.real(i), iS ? im.real(0) : im.real(i)});
      }
      return one(std::move(out));
    };

    // -- transforms -----------------------------------------------------------
    t["fft"] = [](const std::vector<Matrix>& args, std::size_t) {
      return one(fftImpl(args[0], /*inverse=*/false, fftLengthArg(args, "fft")));
    };
    t["ifft"] = [](const std::vector<Matrix>& args, std::size_t) {
      return one(fftImpl(args[0], /*inverse=*/true, fftLengthArg(args, "ifft")));
    };

    // -- ordering / accumulation ----------------------------------------------
    t["sort"] = [](const std::vector<Matrix>& args, std::size_t nOut) {
      requireArgs(args, 1, 2, "sort");
      const Matrix& a = args[0];
      if (!a.isVector() && !a.empty())
        throw RuntimeError("sort: only vectors are supported");
      bool descend = false;
      if (args.size() == 2) {
        if (!args[1].isString()) throw RuntimeError("sort: mode must be a string");
        std::string mode = args[1].stringValue();
        if (mode == "descend") {
          descend = true;
        } else if (mode != "ascend") {
          throw RuntimeError("sort: unknown mode '" + mode + "'");
        }
      }
      std::vector<std::size_t> order(a.numel());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      auto key = [&](std::size_t i) {
        return a.isComplex() ? std::abs(a.at(i)) : a.real(i);
      };
      std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return descend ? key(x) > key(y) : key(x) < key(y);
      });
      Matrix vals = Matrix::zeros(a.rows(), a.cols(), a.isComplex());
      Matrix idxs = Matrix::zeros(a.rows(), a.cols());
      for (std::size_t i = 0; i < order.size(); ++i) {
        vals.set(i, a.at(order[i]));
        idxs.set(i, Complex{static_cast<double>(order[i] + 1), 0.0});
      }
      vals.dropZeroImag();
      std::vector<Matrix> out = one(std::move(vals));
      if (nOut >= 2) out.push_back(std::move(idxs));
      return out;
    };
    t["cumsum"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "cumsum");
      const Matrix& a = args[0];
      if (!a.isVector() && !a.empty())
        throw RuntimeError("cumsum: only vectors are supported");
      Matrix out = Matrix::zeros(a.rows(), a.cols(), a.isComplex());
      Complex acc{};
      for (std::size_t i = 0; i < a.numel(); ++i) {
        acc += a.at(i);
        out.set(i, acc);
      }
      out.dropZeroImag();
      return one(std::move(out));
    };
    t["cumprod"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "cumprod");
      const Matrix& a = args[0];
      if (!a.isVector() && !a.empty())
        throw RuntimeError("cumprod: only vectors are supported");
      Matrix out = Matrix::zeros(a.rows(), a.cols(), a.isComplex());
      Complex acc{1.0, 0.0};
      for (std::size_t i = 0; i < a.numel(); ++i) {
        acc *= a.at(i);
        out.set(i, acc);
      }
      out.dropZeroImag();
      return one(std::move(out));
    };
    t["var"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "var");
      const Matrix& a = args[0];
      if (!a.isVector()) throw RuntimeError("var: only vectors are supported");
      std::size_t n = a.numel();
      if (n < 2) return one(Matrix::scalar(0.0));
      Complex mean{};
      for (std::size_t i = 0; i < n; ++i) mean += a.at(i);
      mean /= static_cast<double>(n);
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += std::norm(a.at(i) - mean);
      return one(Matrix::scalar(acc / static_cast<double>(n - 1)));
    };
    t["std"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "std");
      const Matrix& a = args[0];
      if (!a.isVector()) throw RuntimeError("std: only vectors are supported");
      std::size_t n = a.numel();
      if (n < 2) return one(Matrix::scalar(0.0));
      Complex mean{};
      for (std::size_t i = 0; i < n; ++i) mean += a.at(i);
      mean /= static_cast<double>(n);
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += std::norm(a.at(i) - mean);
      return one(Matrix::scalar(std::sqrt(acc / static_cast<double>(n - 1))));
    };
    t["repmat"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 3, 3, "repmat");
      const Matrix& a = args[0];
      auto rr = static_cast<std::size_t>(args[1].scalarValue());
      auto cc = static_cast<std::size_t>(args[2].scalarValue());
      Matrix out = Matrix::zeros(a.rows() * rr, a.cols() * cc, a.isComplex());
      for (std::size_t bc = 0; bc < cc; ++bc) {
        for (std::size_t br = 0; br < rr; ++br) {
          for (std::size_t c = 0; c < a.cols(); ++c) {
            for (std::size_t r = 0; r < a.rows(); ++r) {
              out.set(br * a.rows() + r, bc * a.cols() + c, a.at(r, c));
            }
          }
        }
      }
      out.dropZeroImag();
      return one(std::move(out));
    };

    // -- misc -----------------------------------------------------------------
    t["disp"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "disp");
      return std::vector<Matrix>{};
    };
    t["error"] = [](const std::vector<Matrix>& args, std::size_t) -> std::vector<Matrix> {
      std::string msg = "error";
      if (!args.empty() && args[0].isString()) msg = args[0].stringValue();
      throw RuntimeError(msg);
    };
    t["fliplr"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "fliplr");
      const Matrix& a = args[0];
      Matrix out = Matrix::zeros(a.rows(), a.cols(), a.isComplex());
      for (std::size_t c = 0; c < a.cols(); ++c)
        for (std::size_t r = 0; r < a.rows(); ++r) out.set(r, a.cols() - 1 - c, a.at(r, c));
      return one(std::move(out));
    };
    t["flipud"] = [](const std::vector<Matrix>& args, std::size_t) {
      requireArgs(args, 1, 1, "flipud");
      const Matrix& a = args[0];
      Matrix out = Matrix::zeros(a.rows(), a.cols(), a.isComplex());
      for (std::size_t c = 0; c < a.cols(); ++c)
        for (std::size_t r = 0; r < a.rows(); ++r) out.set(a.rows() - 1 - r, c, a.at(r, c));
      return one(std::move(out));
    };

    return t;
  }();
  return table;
}

}  // namespace

const std::map<std::string, BuiltinFn>& builtinRuntime() { return makeTable(); }

bool isRuntimeBuiltin(const std::string& name) { return builtinRuntime().count(name) != 0; }

}  // namespace mat2c
