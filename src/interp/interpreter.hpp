// Reference MATLAB interpreter.
//
// Executes the AST directly with full MATLAB value semantics. This is the
// oracle the compiled pipeline is validated against: every end-to-end test
// compares VM results against interpreter results element-wise.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "interp/value.hpp"

namespace mat2c {

/// Builtin implementation: args in, nOut requested outputs out.
using BuiltinFn = std::function<std::vector<Matrix>(const std::vector<Matrix>&, std::size_t)>;

/// Name -> implementation for the interpreter's builtin catalog.
const std::map<std::string, BuiltinFn>& builtinRuntime();
bool isRuntimeBuiltin(const std::string& name);

class Interpreter {
 public:
  /// The program must outlive the interpreter.
  explicit Interpreter(const ast::Program& program);

  /// Calls a user-defined function by name.
  std::vector<Matrix> callFunction(const std::string& name, const std::vector<Matrix>& args,
                                   std::size_t nOut = 1);

  /// Runs the script body (loose statements); returns the final workspace.
  std::map<std::string, Matrix> runScript();

  /// Instruction budget guard: aborts runaway while-loops in tests.
  void setMaxSteps(std::uint64_t steps) { maxSteps_ = steps; }

 private:
  struct Env {
    std::map<std::string, Matrix> vars;
  };
  struct BreakSignal {};
  struct ContinueSignal {};
  struct ReturnSignal {};

  void execBlock(const std::vector<ast::StmtPtr>& body, Env& env);
  void execStmt(const ast::Stmt& stmt, Env& env);
  void execAssign(const ast::Assign& stmt, Env& env);
  void assignInto(const ast::LValue& target, Matrix value, Env& env);

  Matrix eval(const ast::Expr& expr, Env& env);
  std::vector<Matrix> evalMulti(const ast::Expr& expr, Env& env, std::size_t nOut);
  Matrix evalBinary(const ast::Binary& expr, Env& env);
  Matrix evalMatrixLit(const ast::MatrixLit& expr, Env& env);
  Matrix evalRange(const ast::Range& expr, Env& env);
  std::vector<Matrix> evalCallIndex(const ast::CallIndex& expr, Env& env, std::size_t nOut);

  /// Resolves one index argument to 0-based positions. `extent` is the size
  /// of the dimension being indexed (for `:` and `end`).
  std::vector<std::size_t> resolveIndex(const ast::Expr& arg, Env& env, std::size_t extent);
  Matrix indexMatrix(const Matrix& base, const std::vector<ast::ExprPtr>& args, Env& env);
  void indexAssign(Matrix& base, const std::vector<ast::ExprPtr>& args, const Matrix& value,
                   Env& env);

  void step();

  const ast::Program& program_;
  std::uint64_t maxSteps_ = 500'000'000;
  std::uint64_t steps_ = 0;
  int callDepth_ = 0;
};

}  // namespace mat2c
