// Structural verifier for LIR functions. Run after lowering and after each
// optimization pass in tests; catches type/lane inconsistencies and
// references to undeclared names before they turn into silent VM garbage.
#include <map>
#include <set>
#include <sstream>

#include "lir/lir.hpp"

namespace mat2c::lir {
namespace {

class Verifier {
 public:
  explicit Verifier(const Function& fn) : fn_(fn) {}

  std::vector<std::string> run() {
    for (const auto& p : fn_.params) declareTop(p.name, p);
    for (const auto& p : fn_.outs) declareTop(p.name, p);
    std::set<std::string> arrayNames;
    for (const auto& a : fn_.arrays) {
      if (!arrayNames.insert(a.name).second) err("duplicate local array '" + a.name + "'");
      if (scalars_.count(a.name)) err("array '" + a.name + "' shadows a parameter");
      if (a.rows < 0 || a.cols < 0) err("array '" + a.name + "' has negative shape");
    }
    checkBlock(fn_.body, /*inLoop=*/false);
    return std::move(problems_);
  }

 private:
  void declareTop(const std::string& name, const Param& p) {
    if (p.isArray) return;  // array names resolved via Function::arrayInfo
    VType t = p.elem == Scalar::C64 ? VType::c64() : VType::f64();
    if (!scalars_.emplace(name, t).second) err("duplicate parameter '" + name + "'");
  }

  void err(std::string msg) { problems_.push_back(std::move(msg)); }

  bool isArray(const std::string& name, Scalar& elem) {
    std::int64_t n = 0;
    return fn_.arrayInfo(name, elem, n);
  }

  void checkExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::ConstF:
        if (e.type != VType::f64()) err("ConstF with non-f64 type");
        return;
      case ExprKind::ConstI:
        if (e.type != VType::i64()) err("ConstI with non-i64 type");
        return;
      case ExprKind::VarRef: {
        auto it = scalars_.find(e.name);
        if (it == scalars_.end()) {
          err("reference to undeclared variable '" + e.name + "'");
        } else if (!(it->second == e.type)) {
          err("variable '" + e.name + "' used as " + toString(e.type) + " but declared " +
              toString(it->second));
        }
        return;
      }
      case ExprKind::Load: {
        Scalar elem{};
        if (!isArray(e.name, elem)) {
          err("load from unknown array '" + e.name + "'");
          return;
        }
        if (e.type.scalar != elem)
          err("load from '" + e.name + "' with wrong element type");
        if (!e.index) {
          err("load without index");
          return;
        }
        checkExpr(*e.index);
        if (!(e.index->type == VType::i64())) err("load index must be i64");
        return;
      }
      case ExprKind::Unary: {
        if (!e.a) {
          err("unary without operand");
          return;
        }
        checkExpr(*e.a);
        if (e.unOp == UnOp::ToF64 || e.unOp == UnOp::ToI64 || e.unOp == UnOp::ToC64) return;
        if (e.unOp == UnOp::RealPart || e.unOp == UnOp::ImagPart || e.unOp == UnOp::Arg ||
            e.unOp == UnOp::Abs) {
          return;  // complex -> real allowed, lanes preserved
        }
        if (e.unOp == UnOp::Not) return;
        if (e.a->type.lanes != e.type.lanes) err("unary changes lane count");
        return;
      }
      case ExprKind::Binary: {
        if (!e.a || !e.b) {
          err("binary without operands");
          return;
        }
        checkExpr(*e.a);
        checkExpr(*e.b);
        if (e.binOp == BinOp::MakeComplex) {
          if (e.type.scalar != Scalar::C64) err("cplx must produce c64");
          return;
        }
        if (isComparison(e.binOp) || e.binOp == BinOp::And || e.binOp == BinOp::Or) {
          if (e.type.scalar != Scalar::B1 && e.type.scalar != Scalar::F64)
            err("comparison must produce b1/f64");
          return;
        }
        if (e.a->type.lanes != e.b->type.lanes || e.a->type.lanes != e.type.lanes)
          err(std::string("binary '") + toString(e.binOp) + "' with mismatched lanes");
        return;
      }
      case ExprKind::Fma: {
        if (!e.a || !e.b || !e.c) {
          err("fma without three operands");
          return;
        }
        checkExpr(*e.a);
        checkExpr(*e.b);
        checkExpr(*e.c);
        if (e.a->type.lanes != e.type.lanes || e.b->type.lanes != e.type.lanes ||
            e.c->type.lanes != e.type.lanes)
          err("fma with mismatched lanes");
        return;
      }
      case ExprKind::Splat:
        if (!e.a) {
          err("splat without operand");
          return;
        }
        checkExpr(*e.a);
        if (e.a->type.isVector()) err("splat of a vector");
        if (e.type.lanes <= 1) err("splat to scalar");
        return;
      case ExprKind::Reduce:
        if (!e.a) {
          err("reduce without operand");
          return;
        }
        checkExpr(*e.a);
        if (!e.a->type.isVector()) err("reduce of a scalar");
        if (e.type.isVector()) err("reduce producing a vector");
        return;
    }
  }

  void checkBlock(const std::vector<StmtPtr>& body, bool inLoop) {
    // Scope: declarations inside the block disappear at its end.
    auto saved = scalars_;
    for (const auto& s : body) checkStmt(*s, inLoop);
    scalars_ = std::move(saved);
  }

  void checkStmt(const Stmt& s, bool inLoop) {
    switch (s.kind) {
      case StmtKind::DeclScalar:
        if (s.value) {
          checkExpr(*s.value);
          if (!(s.value->type == s.declType))
            err("declaration of '" + s.name + "' initialized with wrong type");
        }
        scalars_[s.name] = s.declType;  // redeclaration shadows (renamer avoids it)
        return;
      case StmtKind::Assign: {
        auto it = scalars_.find(s.name);
        if (it == scalars_.end()) {
          err("assignment to undeclared variable '" + s.name + "'");
          return;
        }
        checkExpr(*s.value);
        if (!(s.value->type == it->second))
          err("assignment to '" + s.name + "' of type " + toString(it->second) + " from " +
              toString(s.value->type));
        return;
      }
      case StmtKind::Store: {
        Scalar elem{};
        if (!isArray(s.name, elem)) {
          err("store to unknown array '" + s.name + "'");
          return;
        }
        checkExpr(*s.index);
        checkExpr(*s.value);
        if (!(s.index->type == VType::i64())) err("store index must be i64");
        if (s.value->type.scalar != elem)
          err("store to '" + s.name + "' with wrong element type");
        return;
      }
      case StmtKind::For: {
        checkExpr(*s.lo);
        checkExpr(*s.hi);
        if (!(s.lo->type == VType::i64()) || !(s.hi->type == VType::i64()))
          err("for bounds must be i64");
        if (s.step == 0) err("for step must be nonzero");
        auto saved = scalars_;
        scalars_[s.name] = VType::i64();
        checkBlock(s.body, /*inLoop=*/true);
        scalars_ = std::move(saved);
        return;
      }
      case StmtKind::If:
        checkExpr(*s.cond);
        checkBlock(s.body, inLoop);
        checkBlock(s.elseBody, inLoop);
        return;
      case StmtKind::While:
        checkExpr(*s.cond);
        checkBlock(s.body, /*inLoop=*/true);
        return;
      case StmtKind::Break:
      case StmtKind::Continue:
        if (!inLoop) err("break/continue outside a loop");
        return;
      case StmtKind::BoundsCheck: {
        Scalar elem{};
        if (!isArray(s.name, elem)) err("bounds check on unknown array '" + s.name + "'");
        checkExpr(*s.index);
        return;
      }
      case StmtKind::AllocMark: {
        Scalar elem{};
        if (!isArray(s.name, elem)) err("alloc mark on unknown array '" + s.name + "'");
        return;
      }
      case StmtKind::Comment:
        return;
    }
  }

  const Function& fn_;
  std::map<std::string, VType> scalars_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> verify(const Function& fn) { return Verifier(fn).run(); }

}  // namespace mat2c::lir
