#include "lir/lir.hpp"

namespace mat2c::lir {

const char* toString(Scalar s) {
  switch (s) {
    case Scalar::F64: return "f64";
    case Scalar::C64: return "c64";
    case Scalar::I64: return "i64";
    case Scalar::B1: return "b1";
  }
  return "?";
}

std::string toString(VType t) {
  std::string s = toString(t.scalar);
  if (t.isVector()) s += "x" + std::to_string(t.lanes);
  return s;
}

const char* toString(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "neg";
    case UnOp::Not: return "not";
    case UnOp::Abs: return "abs";
    case UnOp::Sqrt: return "sqrt";
    case UnOp::Exp: return "exp";
    case UnOp::Log: return "log";
    case UnOp::Log2: return "log2";
    case UnOp::Log10: return "log10";
    case UnOp::Sin: return "sin";
    case UnOp::Cos: return "cos";
    case UnOp::Tan: return "tan";
    case UnOp::Asin: return "asin";
    case UnOp::Acos: return "acos";
    case UnOp::Atan: return "atan";
    case UnOp::Floor: return "floor";
    case UnOp::Ceil: return "ceil";
    case UnOp::Round: return "round";
    case UnOp::Trunc: return "trunc";
    case UnOp::Sign: return "sign";
    case UnOp::Conj: return "conj";
    case UnOp::RealPart: return "real";
    case UnOp::ImagPart: return "imag";
    case UnOp::Arg: return "arg";
    case UnOp::ToF64: return "tof64";
    case UnOp::ToI64: return "toi64";
    case UnOp::ToC64: return "toc64";
  }
  return "?";
}

const char* toString(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Pow: return "pow";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    case BinOp::Atan2: return "atan2";
    case BinOp::Mod: return "mod";
    case BinOp::Rem: return "rem";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
    case BinOp::MakeComplex: return "cplx";
  }
  return "?";
}

bool isComparison(BinOp op) {
  switch (op) {
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      return true;
    default:
      return false;
  }
}

const char* toString(ReduceOp op) {
  switch (op) {
    case ReduceOp::Add: return "redadd";
    case ReduceOp::Min: return "redmin";
    case ReduceOp::Max: return "redmax";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->type = type;
  e->fval = fval;
  e->ival = ival;
  e->name = name;
  e->unOp = unOp;
  e->binOp = binOp;
  e->reduceOp = reduceOp;
  if (index) e->index = index->clone();
  if (a) e->a = a->clone();
  if (b) e->b = b->clone();
  if (c) e->c = c->clone();
  return e;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->name = name;
  s->declType = declType;
  s->step = step;
  if (value) s->value = value->clone();
  if (index) s->index = index->clone();
  if (lo) s->lo = lo->clone();
  if (hi) s->hi = hi->clone();
  if (cond) s->cond = cond->clone();
  s->body.reserve(body.size());
  for (const auto& st : body) s->body.push_back(st->clone());
  s->elseBody.reserve(elseBody.size());
  for (const auto& st : elseBody) s->elseBody.push_back(st->clone());
  return s;
}

ExprPtr constF(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ConstF;
  e->type = VType::f64();
  e->fval = v;
  return e;
}

ExprPtr constI(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ConstI;
  e->type = VType::i64();
  e->ival = v;
  return e;
}

ExprPtr constC(double re, double im) {
  return binary(BinOp::MakeComplex, constF(re), constF(im), VType::c64());
}

ExprPtr varRef(std::string name, VType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::VarRef;
  e->type = type;
  e->name = std::move(name);
  return e;
}

ExprPtr load(std::string array, ExprPtr index, VType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Load;
  e->type = type;
  e->name = std::move(array);
  e->index = std::move(index);
  return e;
}

ExprPtr unary(UnOp op, ExprPtr operand, VType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->type = type;
  e->unOp = op;
  e->a = std::move(operand);
  return e;
}

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs, VType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->type = type;
  e->binOp = op;
  e->a = std::move(lhs);
  e->b = std::move(rhs);
  return e;
}

ExprPtr fma(ExprPtr a, ExprPtr b, ExprPtr c, VType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Fma;
  e->type = type;
  e->a = std::move(a);
  e->b = std::move(b);
  e->c = std::move(c);
  return e;
}

ExprPtr splat(ExprPtr scalar, int lanes) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Splat;
  e->type = {scalar->type.scalar, lanes};
  e->a = std::move(scalar);
  return e;
}

ExprPtr reduce(ReduceOp op, ExprPtr vec) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Reduce;
  e->type = {vec->type.scalar, 1};
  e->reduceOp = op;
  e->a = std::move(vec);
  return e;
}

namespace {
StmtPtr makeStmt(StmtKind k) {
  auto s = std::make_unique<Stmt>();
  s->kind = k;
  return s;
}
}  // namespace

StmtPtr declScalar(std::string name, VType type, ExprPtr init) {
  auto s = makeStmt(StmtKind::DeclScalar);
  s->name = std::move(name);
  s->declType = type;
  s->value = std::move(init);
  return s;
}

StmtPtr assign(std::string name, ExprPtr value) {
  auto s = makeStmt(StmtKind::Assign);
  s->name = std::move(name);
  s->value = std::move(value);
  return s;
}

StmtPtr store(std::string array, ExprPtr index, ExprPtr value) {
  auto s = makeStmt(StmtKind::Store);
  s->name = std::move(array);
  s->index = std::move(index);
  s->value = std::move(value);
  return s;
}

StmtPtr forLoop(std::string var, ExprPtr lo, ExprPtr hi, std::int64_t step,
                std::vector<StmtPtr> body) {
  auto s = makeStmt(StmtKind::For);
  s->name = std::move(var);
  s->lo = std::move(lo);
  s->hi = std::move(hi);
  s->step = step;
  s->body = std::move(body);
  return s;
}

StmtPtr ifStmt(ExprPtr cond, std::vector<StmtPtr> thenBody, std::vector<StmtPtr> elseBody) {
  auto s = makeStmt(StmtKind::If);
  s->cond = std::move(cond);
  s->body = std::move(thenBody);
  s->elseBody = std::move(elseBody);
  return s;
}

StmtPtr whileStmt(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = makeStmt(StmtKind::While);
  s->cond = std::move(cond);
  s->body = std::move(body);
  return s;
}

StmtPtr breakStmt() { return makeStmt(StmtKind::Break); }
StmtPtr continueStmt() { return makeStmt(StmtKind::Continue); }

StmtPtr boundsCheck(std::string array, ExprPtr index) {
  auto s = makeStmt(StmtKind::BoundsCheck);
  s->name = std::move(array);
  s->index = std::move(index);
  return s;
}

StmtPtr allocMark(std::string array) {
  auto s = makeStmt(StmtKind::AllocMark);
  s->name = std::move(array);
  return s;
}

StmtPtr comment(std::string text) {
  auto s = makeStmt(StmtKind::Comment);
  s->name = std::move(text);
  return s;
}

const Param* Function::findParam(const std::string& n) const {
  for (const auto& p : params) {
    if (p.name == n) return &p;
  }
  return nullptr;
}

const Param* Function::findOut(const std::string& n) const {
  for (const auto& p : outs) {
    if (p.name == n) return &p;
  }
  return nullptr;
}

const ArrayDecl* Function::findArray(const std::string& n) const {
  for (const auto& a : arrays) {
    if (a.name == n) return &a;
  }
  return nullptr;
}

bool Function::arrayInfo(const std::string& n, Scalar& elem, std::int64_t& numel) const {
  if (const Param* p = findParam(n); p && p->isArray) {
    elem = p->elem;
    numel = p->numel();
    return true;
  }
  if (const Param* p = findOut(n); p && p->isArray) {
    elem = p->elem;
    numel = p->numel();
    return true;
  }
  if (const ArrayDecl* a = findArray(n)) {
    elem = a->elem;
    numel = a->numel();
    return true;
  }
  return false;
}


std::int64_t Affine::coeff(const std::string& var) const {
  auto it = coeffs.find(var);
  return it == coeffs.end() ? 0 : it->second;
}

bool Affine::onlyVar(const std::string& var) const {
  for (const auto& [name, c] : coeffs) {
    if (name != var && c != 0) return false;
  }
  return true;
}

Affine affineOf(const Expr& e) {
  Affine r;
  switch (e.kind) {
    case ExprKind::ConstI:
      r.ok = true;
      r.constant = e.ival;
      return r;
    case ExprKind::VarRef:
      if (e.type == VType::i64()) {
        r.ok = true;
        r.coeffs[e.name] = 1;
      }
      return r;
    case ExprKind::Binary: {
      if (e.type != VType::i64()) return r;
      Affine a = affineOf(*e.a);
      Affine b = affineOf(*e.b);
      if (!a.ok || !b.ok) return r;
      if (e.binOp == BinOp::Add || e.binOp == BinOp::Sub) {
        std::int64_t sign = e.binOp == BinOp::Add ? 1 : -1;
        r = a;
        r.constant += sign * b.constant;
        for (const auto& [name, c] : b.coeffs) r.coeffs[name] += sign * c;
        return r;
      }
      if (e.binOp == BinOp::Mul) {
        // One side must be a pure constant.
        const Affine* k = b.coeffs.empty() ? &b : (a.coeffs.empty() ? &a : nullptr);
        const Affine* v = k == &b ? &a : &b;
        if (!k) return r;
        r.ok = true;
        r.constant = v->constant * k->constant;
        for (const auto& [name, c] : v->coeffs) r.coeffs[name] = c * k->constant;
        return r;
      }
      return r;
    }
    default:
      return r;
  }
}

namespace {

void countStmt(const Stmt& s, FunctionStats& stats) {
  stats.statements++;
  switch (s.kind) {
    case StmtKind::For:
    case StmtKind::While: stats.loops++; break;
    case StmtKind::DeclScalar: stats.decls++; break;
    case StmtKind::Store: stats.stores++; break;
    case StmtKind::BoundsCheck: stats.boundsChecks++; break;
    default: break;
  }
  for (const auto& inner : s.body) countStmt(*inner, stats);
  for (const auto& inner : s.elseBody) countStmt(*inner, stats);
}

}  // namespace

FunctionStats collectStats(const Function& fn) {
  FunctionStats stats;
  for (const auto& s : fn.body) countStmt(*s, stats);
  return stats;
}

Affine affineSub(const Affine& a, const Affine& b) {
  Affine r;
  if (!a.ok || !b.ok) return r;
  r.ok = true;
  r.constant = a.constant - b.constant;
  r.coeffs = a.coeffs;
  for (const auto& [name, c] : b.coeffs) r.coeffs[name] -= c;
  return r;
}

}  // namespace mat2c::lir
