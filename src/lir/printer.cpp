// Textual LIR dump: one statement per line, C-like expressions.
#include <sstream>

#include "lir/lir.hpp"
#include "support/string_utils.hpp"

namespace mat2c::lir {
namespace {

void printExprInto(const Expr& e, std::ostringstream& os) {
  switch (e.kind) {
    case ExprKind::ConstF:
      os << formatDouble(e.fval);
      return;
    case ExprKind::ConstI:
      os << e.ival;
      return;
    case ExprKind::VarRef:
      os << e.name;
      return;
    case ExprKind::Load:
      os << e.name << '[';
      printExprInto(*e.index, os);
      os << ']';
      if (e.type.isVector()) os << ":" << e.type.lanes;
      return;
    case ExprKind::Unary:
      os << toString(e.unOp) << '(';
      printExprInto(*e.a, os);
      os << ')';
      return;
    case ExprKind::Binary: {
      const char* op = toString(e.binOp);
      // Named binaries print as calls, symbolic ones infix.
      bool call = isalpha(static_cast<unsigned char>(op[0]));
      if (call) {
        os << op << '(';
        printExprInto(*e.a, os);
        os << ", ";
        printExprInto(*e.b, os);
        os << ')';
      } else {
        os << '(';
        printExprInto(*e.a, os);
        os << ' ' << op << ' ';
        printExprInto(*e.b, os);
        os << ')';
      }
      return;
    }
    case ExprKind::Fma:
      os << "fma(";
      printExprInto(*e.a, os);
      os << ", ";
      printExprInto(*e.b, os);
      os << ", ";
      printExprInto(*e.c, os);
      os << ')';
      return;
    case ExprKind::Splat:
      os << "splat<" << e.type.lanes << ">(";
      printExprInto(*e.a, os);
      os << ')';
      return;
    case ExprKind::Reduce:
      os << toString(e.reduceOp) << '(';
      printExprInto(*e.a, os);
      os << ')';
      return;
  }
}

void printStmtInto(const Stmt& s, int indent, std::ostringstream& os) {
  auto pad = [&] {
    for (int i = 0; i < indent; ++i) os << "  ";
  };
  switch (s.kind) {
    case StmtKind::DeclScalar:
      pad();
      os << toString(s.declType) << ' ' << s.name;
      if (s.value) {
        os << " = ";
        printExprInto(*s.value, os);
      }
      os << '\n';
      return;
    case StmtKind::Assign:
      pad();
      os << s.name << " = ";
      printExprInto(*s.value, os);
      os << '\n';
      return;
    case StmtKind::Store:
      pad();
      os << s.name << '[';
      printExprInto(*s.index, os);
      os << ']';
      if (s.value->type.isVector()) os << ":" << s.value->type.lanes;
      os << " = ";
      printExprInto(*s.value, os);
      os << '\n';
      return;
    case StmtKind::For:
      pad();
      os << "for " << s.name << " = ";
      printExprInto(*s.lo, os);
      os << " .. ";
      printExprInto(*s.hi, os);
      if (s.step != 1) os << " step " << s.step;
      os << " {\n";
      for (const auto& st : s.body) printStmtInto(*st, indent + 1, os);
      pad();
      os << "}\n";
      return;
    case StmtKind::If:
      pad();
      os << "if ";
      printExprInto(*s.cond, os);
      os << " {\n";
      for (const auto& st : s.body) printStmtInto(*st, indent + 1, os);
      if (!s.elseBody.empty()) {
        pad();
        os << "} else {\n";
        for (const auto& st : s.elseBody) printStmtInto(*st, indent + 1, os);
      }
      pad();
      os << "}\n";
      return;
    case StmtKind::While:
      pad();
      os << "while ";
      printExprInto(*s.cond, os);
      os << " {\n";
      for (const auto& st : s.body) printStmtInto(*st, indent + 1, os);
      pad();
      os << "}\n";
      return;
    case StmtKind::Break:
      pad();
      os << "break\n";
      return;
    case StmtKind::Continue:
      pad();
      os << "continue\n";
      return;
    case StmtKind::BoundsCheck:
      pad();
      os << "boundscheck " << s.name << '[';
      printExprInto(*s.index, os);
      os << "]\n";
      return;
    case StmtKind::AllocMark:
      pad();
      os << "alloc " << s.name << '\n';
      return;
    case StmtKind::Comment:
      pad();
      os << "; " << s.name << '\n';
      return;
  }
}

}  // namespace

std::string print(const Expr& expr) {
  std::ostringstream os;
  printExprInto(expr, os);
  return os.str();
}

std::string print(const Stmt& stmt, int indent) {
  std::ostringstream os;
  printStmtInto(stmt, indent, os);
  return os.str();
}

std::string print(const Function& fn) {
  std::ostringstream os;
  os << "func " << fn.name << "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    const Param& p = fn.params[i];
    if (i) os << ", ";
    os << toString(p.elem) << ' ' << p.name;
    if (p.isArray) os << '[' << p.rows << 'x' << p.cols << ']';
  }
  os << ") -> (";
  for (std::size_t i = 0; i < fn.outs.size(); ++i) {
    const Param& p = fn.outs[i];
    if (i) os << ", ";
    os << toString(p.elem) << ' ' << p.name;
    if (p.isArray) os << '[' << p.rows << 'x' << p.cols << ']';
  }
  os << ") {\n";
  for (const auto& a : fn.arrays) {
    os << "  local " << toString(a.elem) << ' ' << a.name << '[' << a.rows << 'x' << a.cols
       << "]\n";
  }
  for (const auto& s : fn.body) printStmtInto(*s, 1, os);
  os << "}\n";
  return os.str();
}

}  // namespace mat2c::lir
