// LIR — the compiler's low-level typed IR.
//
// LIR is structured (loops/ifs, not a CFG), scalar-and-vector typed, and
// deliberately C-shaped: every construct prints directly as ANSI C, executes
// directly on the cycle-model VM, and maps 1:1 onto the ISA description's
// operation table. Arrays have static shapes (the specializing front end
// guarantees this); indices are 0-based i64.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mat2c::lir {

enum class Scalar { F64, C64, I64, B1 };
const char* toString(Scalar s);

/// A value type: scalar element + SIMD lane count (1 = scalar).
struct VType {
  Scalar scalar = Scalar::F64;
  int lanes = 1;

  static VType f64(int lanes = 1) { return {Scalar::F64, lanes}; }
  static VType c64(int lanes = 1) { return {Scalar::C64, lanes}; }
  static VType i64() { return {Scalar::I64, 1}; }
  static VType b1() { return {Scalar::B1, 1}; }

  bool isVector() const { return lanes > 1; }
  friend bool operator==(const VType&, const VType&) = default;
};
std::string toString(VType t);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  ConstF,   // f64 literal
  ConstI,   // i64 literal
  VarRef,   // scalar or vector variable
  Load,     // array[index]; lanes > 1 = consecutive vector load
  Unary,
  Binary,
  Fma,      // a*b + c fused (scalar or vector, real or complex)
  Splat,    // broadcast scalar -> vector
  Reduce,   // horizontal reduction of a vector -> scalar
};

enum class UnOp {
  Neg, Not, Abs, Sqrt, Exp, Log, Log2, Log10, Sin, Cos, Tan, Asin, Acos, Atan,
  Floor, Ceil, Round, Trunc, Sign,
  Conj, RealPart, ImagPart, Arg,   // complex
  ToF64, ToI64, ToC64,             // conversions (B1/I64 -> F64, F64 -> I64, F64 -> C64)
};
const char* toString(UnOp op);

enum class BinOp {
  Add, Sub, Mul, Div, Pow, Min, Max, Atan2, Mod, Rem,
  Eq, Ne, Lt, Le, Gt, Ge, And, Or,
  MakeComplex,  // (re: f64, im: f64) -> c64
};
const char* toString(BinOp op);
bool isComparison(BinOp op);

enum class ReduceOp { Add, Min, Max };
const char* toString(ReduceOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  VType type;

  // ConstF / ConstI
  double fval = 0.0;
  std::int64_t ival = 0;

  // VarRef / Load
  std::string name;   // variable or array name
  ExprPtr index;      // Load: i64 element index

  // Unary / Binary / Fma / Splat / Reduce
  UnOp unOp{};
  BinOp binOp{};
  ReduceOp reduceOp{};
  ExprPtr a;  // operand 0 (Unary operand, Binary lhs, Fma a, Splat src, Reduce src)
  ExprPtr b;  // Binary rhs, Fma b
  ExprPtr c;  // Fma addend

  ExprPtr clone() const;
};

// -- construction helpers ----------------------------------------------------
ExprPtr constF(double v);
ExprPtr constI(std::int64_t v);
ExprPtr constC(double re, double im);
ExprPtr varRef(std::string name, VType type);
ExprPtr load(std::string array, ExprPtr index, VType type);
ExprPtr unary(UnOp op, ExprPtr operand, VType type);
ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs, VType type);
ExprPtr fma(ExprPtr a, ExprPtr b, ExprPtr c, VType type);
ExprPtr splat(ExprPtr scalar, int lanes);
ExprPtr reduce(ReduceOp op, ExprPtr vec);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  DeclScalar,   // declare (and optionally init) a scalar/vector register
  Assign,       // existing register = expr
  Store,        // array[index] = value (vector value = consecutive store)
  For,          // for (var = lo; var < hi; var += step) body
  If,
  While,
  Break,
  Continue,
  BoundsCheck,  // baseline-style runtime check on array[index]
  AllocMark,    // baseline-style temporary materialization marker
  Comment,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;

  std::string name;          // DeclScalar/Assign var; Store/BoundsCheck/AllocMark array;
                             // For induction var; Comment text
  VType declType;            // DeclScalar
  ExprPtr value;             // DeclScalar init / Assign rhs / Store value
  ExprPtr index;             // Store/BoundsCheck index
  ExprPtr lo, hi;            // For bounds (hi exclusive), i64
  std::int64_t step = 1;     // For step (compile-time constant)
  ExprPtr cond;              // If/While condition (b1)
  std::vector<StmtPtr> body;       // For/While body, If then-branch
  std::vector<StmtPtr> elseBody;   // If else-branch

  StmtPtr clone() const;
};

StmtPtr declScalar(std::string name, VType type, ExprPtr init = nullptr);
StmtPtr assign(std::string name, ExprPtr value);
StmtPtr store(std::string array, ExprPtr index, ExprPtr value);
StmtPtr forLoop(std::string var, ExprPtr lo, ExprPtr hi, std::int64_t step,
                std::vector<StmtPtr> body);
StmtPtr ifStmt(ExprPtr cond, std::vector<StmtPtr> thenBody,
               std::vector<StmtPtr> elseBody = {});
StmtPtr whileStmt(ExprPtr cond, std::vector<StmtPtr> body);
StmtPtr breakStmt();
StmtPtr continueStmt();
StmtPtr boundsCheck(std::string array, ExprPtr index);
StmtPtr allocMark(std::string array);
StmtPtr comment(std::string text);

// ---------------------------------------------------------------------------
// Function
// ---------------------------------------------------------------------------

/// A parameter or result: scalar value or array with a static shape.
struct Param {
  std::string name;
  Scalar elem = Scalar::F64;
  bool isArray = false;
  std::int64_t rows = 1;
  std::int64_t cols = 1;

  std::int64_t numel() const { return rows * cols; }
};

/// A local array with a static shape.
struct ArrayDecl {
  std::string name;
  Scalar elem = Scalar::F64;
  std::int64_t rows = 1;
  std::int64_t cols = 1;

  std::int64_t numel() const { return rows * cols; }
};

struct Function {
  std::string name;
  std::vector<Param> params;   // inputs, in call order
  std::vector<Param> outs;     // outputs (scalars returned via pointer in C)
  std::vector<ArrayDecl> arrays;  // locals
  std::vector<StmtPtr> body;

  const Param* findParam(const std::string& n) const;
  const Param* findOut(const std::string& n) const;
  const ArrayDecl* findArray(const std::string& n) const;
  /// Element type and static element count of any named array (param, out,
  /// or local); returns false when `n` is not an array.
  bool arrayInfo(const std::string& n, Scalar& elem, std::int64_t& numel) const;
};

/// Human-readable dump (tests, --dump-lir).
std::string print(const Function& fn);
std::string print(const Stmt& stmt, int indent = 0);
std::string print(const Expr& expr);

/// Structural well-formedness check; returns a list of problems (empty = ok).
std::vector<std::string> verify(const Function& fn);

/// Cheap size statistics over a function's statement tree. The instrumented
/// pass pipeline records these before and after every pass so a transform's
/// effect on program shape is attributable without diffing dumps.
struct FunctionStats {
  int statements = 0;    // every Stmt node, recursively
  int loops = 0;         // For + While
  int decls = 0;         // DeclScalar
  int stores = 0;        // Store
  int boundsChecks = 0;  // BoundsCheck

  friend bool operator==(const FunctionStats&, const FunctionStats&) = default;
};
FunctionStats collectStats(const Function& fn);

/// Affine view of an i64 expression: sum(coeff_i * var_i) + constant.
/// Used by slice lowering (static trip counts) and by the vectorizer
/// (stride analysis of load/store indices).
struct Affine {
  bool ok = false;
  std::map<std::string, std::int64_t> coeffs;
  std::int64_t constant = 0;

  /// Coefficient of `var` (0 when absent).
  std::int64_t coeff(const std::string& var) const;
  /// True when the only (possibly) nonzero coefficient is on `var`.
  bool onlyVar(const std::string& var) const;
};
Affine affineOf(const Expr& e);
/// a - b when both are affine; ok=false otherwise.
Affine affineSub(const Affine& a, const Affine& b);

}  // namespace mat2c::lir
