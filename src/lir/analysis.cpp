#include "lir/analysis.hpp"

namespace mat2c::lir {

bool exprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind || !(a.type == b.type)) return false;
  switch (a.kind) {
    case ExprKind::ConstF:
      // Bitwise-identical constants only; folding already canonicalizes.
      return a.fval == b.fval;
    case ExprKind::ConstI: return a.ival == b.ival;
    case ExprKind::VarRef: return a.name == b.name;
    case ExprKind::Load:
      return a.name == b.name && exprEquals(*a.index, *b.index);
    case ExprKind::Unary:
      return a.unOp == b.unOp && exprEquals(*a.a, *b.a);
    case ExprKind::Binary:
      return a.binOp == b.binOp && exprEquals(*a.a, *b.a) && exprEquals(*a.b, *b.b);
    case ExprKind::Fma:
      return exprEquals(*a.a, *b.a) && exprEquals(*a.b, *b.b) && exprEquals(*a.c, *b.c);
    case ExprKind::Splat: return exprEquals(*a.a, *b.a);
    case ExprKind::Reduce:
      return a.reduceOp == b.reduceOp && exprEquals(*a.a, *b.a);
  }
  return false;
}

void substituteVar(ExprPtr& e, const std::string& name, const Expr& replacement) {
  if (e->kind == ExprKind::VarRef && e->name == name) {
    e = replacement.clone();
    return;
  }
  if (e->index) substituteVar(e->index, name, replacement);
  if (e->a) substituteVar(e->a, name, replacement);
  if (e->b) substituteVar(e->b, name, replacement);
  if (e->c) substituteVar(e->c, name, replacement);
}

void substituteVar(Stmt& s, const std::string& name, const Expr& replacement) {
  if (s.value) substituteVar(s.value, name, replacement);
  if (s.index) substituteVar(s.index, name, replacement);
  if (s.lo) substituteVar(s.lo, name, replacement);
  if (s.hi) substituteVar(s.hi, name, replacement);
  if (s.cond) substituteVar(s.cond, name, replacement);
  for (auto& st : s.body) {
    // A nested declaration of the same name shadows; stop substituting its
    // scope. (Bounds/init of the shadowing stmt were handled above.)
    if ((st->kind == StmtKind::DeclScalar || st->kind == StmtKind::For) && st->name == name) {
      if (st->value) substituteVar(st->value, name, replacement);
      if (st->lo) substituteVar(st->lo, name, replacement);
      if (st->hi) substituteVar(st->hi, name, replacement);
      continue;
    }
    substituteVar(*st, name, replacement);
  }
  for (auto& st : s.elseBody) {
    if ((st->kind == StmtKind::DeclScalar || st->kind == StmtKind::For) && st->name == name) {
      if (st->value) substituteVar(st->value, name, replacement);
      if (st->lo) substituteVar(st->lo, name, replacement);
      if (st->hi) substituteVar(st->hi, name, replacement);
      continue;
    }
    substituteVar(*st, name, replacement);
  }
}

namespace {

void renameInExpr(ExprPtr& e, const std::string& from, const std::string& to) {
  if (e->kind == ExprKind::VarRef && e->name == from) e->name = to;
  if (e->index) renameInExpr(e->index, from, to);
  if (e->a) renameInExpr(e->a, from, to);
  if (e->b) renameInExpr(e->b, from, to);
  if (e->c) renameInExpr(e->c, from, to);
}

}  // namespace

void renameVar(Stmt& s, const std::string& from, const std::string& to) {
  if ((s.kind == StmtKind::DeclScalar || s.kind == StmtKind::Assign ||
       s.kind == StmtKind::For) &&
      s.name == from) {
    s.name = to;
  }
  if (s.value) renameInExpr(s.value, from, to);
  if (s.index) renameInExpr(s.index, from, to);
  if (s.lo) renameInExpr(s.lo, from, to);
  if (s.hi) renameInExpr(s.hi, from, to);
  if (s.cond) renameInExpr(s.cond, from, to);
  for (auto& st : s.body) renameVar(*st, from, to);
  for (auto& st : s.elseBody) renameVar(*st, from, to);
}

bool AccessInfo::independentOf(const AccessInfo& other) const {
  if (hasLoopControl || other.hasLoopControl) return false;
  auto intersects = [](const std::set<std::string>& a, const std::set<std::string>& b) {
    for (const auto& x : a)
      if (b.count(x)) return true;
    return false;
  };
  if (intersects(scalarWrites, other.scalarWrites)) return false;
  if (intersects(scalarWrites, other.scalarReads)) return false;
  if (intersects(scalarReads, other.scalarWrites)) return false;
  if (intersects(arrayWrites, other.arrayWrites)) return false;
  if (intersects(arrayWrites, other.arrayReads)) return false;
  if (intersects(arrayReads, other.arrayWrites)) return false;
  return true;
}

void collectAccess(const Expr& e, AccessInfo& out) {
  if (e.kind == ExprKind::VarRef) out.scalarReads.insert(e.name);
  if (e.kind == ExprKind::Load) out.arrayReads.insert(e.name);
  if (e.index) collectAccess(*e.index, out);
  if (e.a) collectAccess(*e.a, out);
  if (e.b) collectAccess(*e.b, out);
  if (e.c) collectAccess(*e.c, out);
}

void collectAccess(const Stmt& s, AccessInfo& out) {
  switch (s.kind) {
    case StmtKind::DeclScalar:
      out.scalarWrites.insert(s.name);
      out.scalarDecls.insert(s.name);
      break;
    case StmtKind::Assign: out.scalarWrites.insert(s.name); break;
    case StmtKind::Store: out.arrayWrites.insert(s.name); break;
    case StmtKind::For:
      out.scalarWrites.insert(s.name);
      out.scalarDecls.insert(s.name);
      break;
    case StmtKind::BoundsCheck: out.arrayReads.insert(s.name); break;
    case StmtKind::AllocMark: out.arrayWrites.insert(s.name); break;
    case StmtKind::Break:
    case StmtKind::Continue: out.hasLoopControl = true; break;
    case StmtKind::While: out.hasWhile = true; break;
    default: break;
  }
  if (s.value) collectAccess(*s.value, out);
  if (s.index) collectAccess(*s.index, out);
  if (s.lo) collectAccess(*s.lo, out);
  if (s.hi) collectAccess(*s.hi, out);
  if (s.cond) collectAccess(*s.cond, out);
  for (const auto& st : s.body) collectAccess(*st, out);
  for (const auto& st : s.elseBody) collectAccess(*st, out);
}

std::set<std::string> varReads(const Expr& e) {
  AccessInfo info;
  collectAccess(e, info);
  return info.scalarReads;
}

bool containsLoad(const Expr& e) {
  if (e.kind == ExprKind::Load) return true;
  if (e.index && containsLoad(*e.index)) return true;
  if (e.a && containsLoad(*e.a)) return true;
  if (e.b && containsLoad(*e.b)) return true;
  if (e.c && containsLoad(*e.c)) return true;
  return false;
}

}  // namespace mat2c::lir
