// Reusable LIR analyses for the loop-optimization passes.
//
// The loop optimizer needs three things the core IR does not provide:
// structural expression equality (CSE value numbering keys), variable
// substitution/renaming (loop fusion unifies induction variables, unrolling
// specializes them to constants), and read/write-set summaries of statement
// regions (dependence tests for fusion, invariance tests for LICM). They are
// deliberately syntactic: every LIR right-hand side is pure, so two
// structurally equal expressions evaluated under the same variable bindings
// produce the same value.
#pragma once

#include <set>
#include <string>

#include "lir/lir.hpp"

namespace mat2c::lir {

/// Structural equality of expression trees (names, constants, ops, types).
bool exprEquals(const Expr& a, const Expr& b);

/// Replaces every VarRef to `name` in the tree with a clone of `replacement`.
void substituteVar(ExprPtr& e, const std::string& name, const Expr& replacement);

/// Substitutes in every expression position of a statement (recursively).
/// Does not touch definition sites (DeclScalar/Assign targets, For induction
/// variables) — use renameVar for whole-sale renaming.
void substituteVar(Stmt& s, const std::string& name, const Expr& replacement);

/// Renames a variable: definition sites (DeclScalar/Assign/For) and every
/// VarRef, recursively. The caller guarantees `to` is not otherwise bound in
/// the region.
void renameVar(Stmt& s, const std::string& from, const std::string& to);

/// Summary of what a statement region touches. `scalarWrites` includes
/// Assign targets, DeclScalar names, and For induction variables;
/// `scalarDecls` lists just the names the region itself declares (including
/// induction variables), i.e. names that are out of scope outside it.
struct AccessInfo {
  std::set<std::string> scalarReads;
  std::set<std::string> scalarWrites;
  std::set<std::string> scalarDecls;
  std::set<std::string> arrayReads;   // Load / BoundsCheck targets
  std::set<std::string> arrayWrites;  // Store / AllocMark targets
  bool hasLoopControl = false;        // Break/Continue anywhere inside
  bool hasWhile = false;

  /// True when reordering `*this` before `other` cannot change either
  /// region's behavior: no write/write or read/write overlap on scalars or
  /// arrays, and neither region carries loop-control statements.
  bool independentOf(const AccessInfo& other) const;
};

void collectAccess(const Expr& e, AccessInfo& out);
void collectAccess(const Stmt& s, AccessInfo& out);

/// Every variable name read by the expression.
std::set<std::string> varReads(const Expr& e);

/// True when the tree contains a Load.
bool containsLoad(const Expr& e);

}  // namespace mat2c::lir
