// Indented AST dump, one node per line, used by parser tests and the driver's
// --dump-ast mode.
#include <sstream>

#include "ast/ast.hpp"
#include "support/string_utils.hpp"

namespace mat2c::ast {
namespace {

class Printer {
 public:
  std::string print(const Node& n) {
    visit(n);
    return std::move(out_).str();
  }

 private:
  void line(const std::string& text) {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
    out_ << text << '\n';
  }

  void children(const std::vector<StmtPtr>& stmts) {
    ++indent_;
    for (const auto& s : stmts) visit(*s);
    --indent_;
  }

  void child(const Node* n) {
    if (!n) return;
    ++indent_;
    visit(*n);
    --indent_;
  }

  void visit(const Node& n) {
    switch (n.kind) {
      case NodeKind::NumberLit: {
        const auto& e = static_cast<const NumberLit&>(n);
        line("Number " + formatDouble(e.value) + (e.imaginary ? "i" : ""));
        return;
      }
      case NodeKind::StringLit:
        line("String '" + static_cast<const StringLit&>(n).value + "'");
        return;
      case NodeKind::Ident:
        line("Ident " + static_cast<const Ident&>(n).name);
        return;
      case NodeKind::Unary: {
        const auto& e = static_cast<const Unary&>(n);
        line(std::string("Unary ") + toString(e.op));
        child(e.operand.get());
        return;
      }
      case NodeKind::Binary: {
        const auto& e = static_cast<const Binary&>(n);
        line(std::string("Binary ") + toString(e.op));
        child(e.lhs.get());
        child(e.rhs.get());
        return;
      }
      case NodeKind::Transpose: {
        const auto& e = static_cast<const Transpose&>(n);
        line(e.conjugate ? "Transpose'" : "Transpose.'");
        child(e.operand.get());
        return;
      }
      case NodeKind::Range: {
        const auto& e = static_cast<const Range&>(n);
        line("Range");
        child(e.start.get());
        child(e.step.get());
        child(e.stop.get());
        return;
      }
      case NodeKind::Colon:
        line("Colon");
        return;
      case NodeKind::End:
        line("End");
        return;
      case NodeKind::CallIndex: {
        const auto& e = static_cast<const CallIndex&>(n);
        line("CallIndex");
        child(e.base.get());
        ++indent_;
        for (const auto& a : e.args) visit(*a);
        --indent_;
        return;
      }
      case NodeKind::MatrixLit: {
        const auto& e = static_cast<const MatrixLit&>(n);
        line("MatrixLit rows=" + std::to_string(e.rows.size()));
        ++indent_;
        for (const auto& row : e.rows) {
          line("Row");
          ++indent_;
          for (const auto& el : row) visit(*el);
          --indent_;
        }
        --indent_;
        return;
      }
      case NodeKind::Assign: {
        const auto& s = static_cast<const Assign&>(n);
        std::vector<std::string> names;
        names.reserve(s.targets.size());
        for (const auto& t : s.targets)
          names.push_back(t.name + (t.indices.empty() ? "" : "(...)"));
        line("Assign " + join(names, ", "));
        ++indent_;
        for (const auto& t : s.targets)
          for (const auto& ix : t.indices) visit(*ix);
        --indent_;
        child(s.rhs.get());
        return;
      }
      case NodeKind::ExprStmt:
        line("ExprStmt");
        child(static_cast<const ExprStmt&>(n).expr.get());
        return;
      case NodeKind::If: {
        const auto& s = static_cast<const If&>(n);
        line("If");
        for (const auto& b : s.branches) {
          ++indent_;
          line("Branch");
          child(b.cond.get());
          children(b.body);
          --indent_;
        }
        if (!s.elseBody.empty()) {
          ++indent_;
          line("Else");
          children(s.elseBody);
          --indent_;
        }
        return;
      }
      case NodeKind::For: {
        const auto& s = static_cast<const For&>(n);
        line("For " + s.var);
        child(s.range.get());
        children(s.body);
        return;
      }
      case NodeKind::While: {
        const auto& s = static_cast<const While&>(n);
        line("While");
        child(s.cond.get());
        children(s.body);
        return;
      }
      case NodeKind::Switch: {
        const auto& s = static_cast<const Switch&>(n);
        line("Switch");
        child(s.subject.get());
        for (const auto& c : s.cases) {
          ++indent_;
          line("Case");
          child(c.value.get());
          children(c.body);
          --indent_;
        }
        if (!s.otherwise.empty()) {
          ++indent_;
          line("Otherwise");
          children(s.otherwise);
          --indent_;
        }
        return;
      }
      case NodeKind::Break: line("Break"); return;
      case NodeKind::Continue: line("Continue"); return;
      case NodeKind::Return: line("Return"); return;
      case NodeKind::Function: {
        const auto& f = static_cast<const Function&>(n);
        line("Function " + f.name + "(" + join(f.params, ", ") + ") -> [" +
             join(f.outs, ", ") + "]");
        children(f.body);
        return;
      }
      case NodeKind::Program: {
        const auto& p = static_cast<const Program&>(n);
        line("Program");
        ++indent_;
        for (const auto& f : p.functions) visit(*f);
        --indent_;
        children(p.scriptBody);
        return;
      }
    }
  }

  std::ostringstream out_;
  int indent_ = 0;
};

}  // namespace

std::string dump(const Node& node) { return Printer().print(node); }

}  // namespace mat2c::ast
