// Abstract syntax tree for the MATLAB subset.
//
// Nodes carry a NodeKind tag and dispatch is by switch + cast (see
// ast/printer.cpp for the pattern); ownership is by unique_ptr along the
// tree's edges.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace mat2c::ast {

enum class NodeKind {
  // Expressions
  NumberLit, StringLit, Ident, Unary, Binary, Transpose, Range, Colon, End,
  CallIndex, MatrixLit,
  // Statements
  Assign, ExprStmt, If, For, While, Switch, Break, Continue, Return,
  // Top level
  Function, Program,
};

const char* toString(NodeKind kind);

struct Node {
  explicit Node(NodeKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const NodeKind kind;
  SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr : Node {
  using Node::Node;
};
using ExprPtr = std::unique_ptr<Expr>;

struct NumberLit final : Expr {
  NumberLit(double v, bool imag, SourceLoc l)
      : Expr(NodeKind::NumberLit, l), value(v), imaginary(imag) {}
  double value;
  bool imaginary;  // literal had an i/j suffix
};

struct StringLit final : Expr {
  StringLit(std::string v, SourceLoc l) : Expr(NodeKind::StringLit, l), value(std::move(v)) {}
  std::string value;
};

struct Ident final : Expr {
  Ident(std::string n, SourceLoc l) : Expr(NodeKind::Ident, l), name(std::move(n)) {}
  std::string name;
};

enum class UnaryOp { Neg, Plus, Not };
const char* toString(UnaryOp op);

struct Unary final : Expr {
  Unary(UnaryOp o, ExprPtr e, SourceLoc l)
      : Expr(NodeKind::Unary, l), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp {
  Add, Sub,
  MatMul, ElemMul,          // *  .*
  MatDiv, ElemDiv,          // /  ./   (right division)
  MatLeftDiv, ElemLeftDiv,  // backslash and dot-backslash (left division)
  MatPow, ElemPow,          // ^  .^
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,                  // elementwise & |
  AndAnd, OrOr,             // short-circuit && ||
};
const char* toString(BinaryOp op);
bool isComparison(BinaryOp op);
bool isElementwise(BinaryOp op);  // operates element-by-element with scalar expansion

struct Binary final : Expr {
  Binary(BinaryOp o, ExprPtr l_, ExprPtr r_, SourceLoc loc_)
      : Expr(NodeKind::Binary, loc_), op(o), lhs(std::move(l_)), rhs(std::move(r_)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Transpose final : Expr {
  Transpose(ExprPtr e, bool conj, SourceLoc l)
      : Expr(NodeKind::Transpose, l), operand(std::move(e)), conjugate(conj) {}
  ExprPtr operand;
  bool conjugate;  // ' vs .'
};

/// a:b or a:step:b
struct Range final : Expr {
  Range(ExprPtr s, ExprPtr st, ExprPtr e, SourceLoc l)
      : Expr(NodeKind::Range, l), start(std::move(s)), step(std::move(st)), stop(std::move(e)) {}
  ExprPtr start;
  ExprPtr step;  // null for implicit step 1
  ExprPtr stop;
};

/// Bare ':' inside an index list.
struct Colon final : Expr {
  explicit Colon(SourceLoc l) : Expr(NodeKind::Colon, l) {}
};

/// 'end' inside an index list.
struct End final : Expr {
  explicit End(SourceLoc l) : Expr(NodeKind::End, l) {}
};

/// `base(args...)` — indexing or a function call; sema disambiguates.
struct CallIndex final : Expr {
  CallIndex(ExprPtr b, std::vector<ExprPtr> a, SourceLoc l)
      : Expr(NodeKind::CallIndex, l), base(std::move(b)), args(std::move(a)) {}
  ExprPtr base;
  std::vector<ExprPtr> args;
};

/// [r00 r01; r10 r11] — rows of element expressions.
struct MatrixLit final : Expr {
  MatrixLit(std::vector<std::vector<ExprPtr>> r, SourceLoc l)
      : Expr(NodeKind::MatrixLit, l), rows(std::move(r)) {}
  std::vector<std::vector<ExprPtr>> rows;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt : Node {
  using Node::Node;
};
using StmtPtr = std::unique_ptr<Stmt>;

/// One assignment target: `x` or `x(indices...)`.
struct LValue {
  std::string name;
  std::vector<ExprPtr> indices;  // empty => whole-variable assignment
  SourceLoc loc;
};

/// `x = rhs`, `x(i) = rhs`, or `[a, b] = f(...)`.
struct Assign final : Stmt {
  Assign(std::vector<LValue> t, ExprPtr r, SourceLoc l)
      : Stmt(NodeKind::Assign, l), targets(std::move(t)), rhs(std::move(r)) {}
  std::vector<LValue> targets;
  ExprPtr rhs;
};

struct ExprStmt final : Stmt {
  ExprStmt(ExprPtr e, SourceLoc l) : Stmt(NodeKind::ExprStmt, l), expr(std::move(e)) {}
  ExprPtr expr;
};

struct If final : Stmt {
  struct Branch {
    ExprPtr cond;
    std::vector<StmtPtr> body;
  };
  If(std::vector<Branch> b, std::vector<StmtPtr> e, SourceLoc l)
      : Stmt(NodeKind::If, l), branches(std::move(b)), elseBody(std::move(e)) {}
  std::vector<Branch> branches;  // if + elseifs, in order
  std::vector<StmtPtr> elseBody;
};

struct For final : Stmt {
  For(std::string v, ExprPtr r, std::vector<StmtPtr> b, SourceLoc l)
      : Stmt(NodeKind::For, l), var(std::move(v)), range(std::move(r)), body(std::move(b)) {}
  std::string var;
  ExprPtr range;  // usually a Range; any row vector in full MATLAB
  std::vector<StmtPtr> body;
};

struct While final : Stmt {
  While(ExprPtr c, std::vector<StmtPtr> b, SourceLoc l)
      : Stmt(NodeKind::While, l), cond(std::move(c)), body(std::move(b)) {}
  ExprPtr cond;
  std::vector<StmtPtr> body;
};

struct Switch final : Stmt {
  struct Case {
    ExprPtr value;  // a scalar/string, or a MatrixLit of alternatives
    std::vector<StmtPtr> body;
  };
  Switch(ExprPtr s, std::vector<Case> c, std::vector<StmtPtr> o, SourceLoc l)
      : Stmt(NodeKind::Switch, l), subject(std::move(s)), cases(std::move(c)),
        otherwise(std::move(o)) {}
  ExprPtr subject;
  std::vector<Case> cases;
  std::vector<StmtPtr> otherwise;
};

struct Break final : Stmt {
  explicit Break(SourceLoc l) : Stmt(NodeKind::Break, l) {}
};
struct Continue final : Stmt {
  explicit Continue(SourceLoc l) : Stmt(NodeKind::Continue, l) {}
};
struct Return final : Stmt {
  explicit Return(SourceLoc l) : Stmt(NodeKind::Return, l) {}
};

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

struct Function final : Node {
  Function(std::string n, std::vector<std::string> ins, std::vector<std::string> outs_,
           std::vector<StmtPtr> b, SourceLoc l)
      : Node(NodeKind::Function, l), name(std::move(n)), params(std::move(ins)),
        outs(std::move(outs_)), body(std::move(b)) {}
  std::string name;
  std::vector<std::string> params;
  std::vector<std::string> outs;
  std::vector<StmtPtr> body;
};
using FunctionPtr = std::unique_ptr<Function>;

/// A parsed file: function definitions plus (for scripts) loose statements.
struct Program final : Node {
  Program(std::vector<FunctionPtr> f, std::vector<StmtPtr> s, SourceLoc l)
      : Node(NodeKind::Program, l), functions(std::move(f)), scriptBody(std::move(s)) {}
  std::vector<FunctionPtr> functions;
  std::vector<StmtPtr> scriptBody;

  const Function* findFunction(const std::string& name) const;
};
using ProgramPtr = std::unique_ptr<Program>;

/// Multi-line, indented dump used by tests and --dump-ast.
std::string dump(const Node& node);

/// Cheap size/shape statistics over a tree, used by the driver to enforce
/// CompileLimits::maxAstNodes / maxAstDepth before lowering touches a
/// hostile program.
struct TreeStats {
  std::size_t nodes = 0;  // every Node, recursively
  int depth = 0;          // deepest Node nesting (root = 1)
};
TreeStats collectStats(const Node& node);

}  // namespace mat2c::ast
