#include "ast/ast.hpp"

namespace mat2c::ast {

const char* toString(NodeKind kind) {
  switch (kind) {
    case NodeKind::NumberLit: return "NumberLit";
    case NodeKind::StringLit: return "StringLit";
    case NodeKind::Ident: return "Ident";
    case NodeKind::Unary: return "Unary";
    case NodeKind::Binary: return "Binary";
    case NodeKind::Transpose: return "Transpose";
    case NodeKind::Range: return "Range";
    case NodeKind::Colon: return "Colon";
    case NodeKind::End: return "End";
    case NodeKind::CallIndex: return "CallIndex";
    case NodeKind::MatrixLit: return "MatrixLit";
    case NodeKind::Assign: return "Assign";
    case NodeKind::ExprStmt: return "ExprStmt";
    case NodeKind::If: return "If";
    case NodeKind::For: return "For";
    case NodeKind::While: return "While";
    case NodeKind::Switch: return "Switch";
    case NodeKind::Break: return "Break";
    case NodeKind::Continue: return "Continue";
    case NodeKind::Return: return "Return";
    case NodeKind::Function: return "Function";
    case NodeKind::Program: return "Program";
  }
  return "?";
}

const char* toString(UnaryOp op) {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::Plus: return "+";
    case UnaryOp::Not: return "~";
  }
  return "?";
}

const char* toString(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::MatMul: return "*";
    case BinaryOp::ElemMul: return ".*";
    case BinaryOp::MatDiv: return "/";
    case BinaryOp::ElemDiv: return "./";
    case BinaryOp::MatLeftDiv: return "\\";
    case BinaryOp::ElemLeftDiv: return ".\\";
    case BinaryOp::MatPow: return "^";
    case BinaryOp::ElemPow: return ".^";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "~=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::AndAnd: return "&&";
    case BinaryOp::OrOr: return "||";
  }
  return "?";
}

bool isComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return true;
    default:
      return false;
  }
}

bool isElementwise(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::ElemMul:
    case BinaryOp::ElemDiv:
    case BinaryOp::ElemLeftDiv:
    case BinaryOp::ElemPow:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::And:
    case BinaryOp::Or:
      return true;
    default:
      return false;
  }
}

const Function* Program::findFunction(const std::string& name) const {
  for (const auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

namespace {

struct StatsWalker {
  TreeStats stats;

  void block(const std::vector<StmtPtr>& stmts, int depth) {
    for (const auto& s : stmts) visit(s.get(), depth);
  }

  void visit(const Node* n, int depth) {
    if (!n) return;
    ++stats.nodes;
    if (depth > stats.depth) stats.depth = depth;
    int d = depth + 1;
    switch (n->kind) {
      case NodeKind::NumberLit:
      case NodeKind::StringLit:
      case NodeKind::Ident:
      case NodeKind::Colon:
      case NodeKind::End:
      case NodeKind::Break:
      case NodeKind::Continue:
      case NodeKind::Return:
        return;
      case NodeKind::Unary:
        visit(static_cast<const Unary*>(n)->operand.get(), d);
        return;
      case NodeKind::Binary: {
        const auto* e = static_cast<const Binary*>(n);
        visit(e->lhs.get(), d);
        visit(e->rhs.get(), d);
        return;
      }
      case NodeKind::Transpose:
        visit(static_cast<const Transpose*>(n)->operand.get(), d);
        return;
      case NodeKind::Range: {
        const auto* e = static_cast<const Range*>(n);
        visit(e->start.get(), d);
        visit(e->step.get(), d);
        visit(e->stop.get(), d);
        return;
      }
      case NodeKind::CallIndex: {
        const auto* e = static_cast<const CallIndex*>(n);
        visit(e->base.get(), d);
        for (const auto& a : e->args) visit(a.get(), d);
        return;
      }
      case NodeKind::MatrixLit:
        for (const auto& row : static_cast<const MatrixLit*>(n)->rows) {
          for (const auto& e : row) visit(e.get(), d);
        }
        return;
      case NodeKind::Assign: {
        const auto* s = static_cast<const Assign*>(n);
        for (const auto& t : s->targets) {
          for (const auto& i : t.indices) visit(i.get(), d);
        }
        visit(s->rhs.get(), d);
        return;
      }
      case NodeKind::ExprStmt:
        visit(static_cast<const ExprStmt*>(n)->expr.get(), d);
        return;
      case NodeKind::If: {
        const auto* s = static_cast<const If*>(n);
        for (const auto& b : s->branches) {
          visit(b.cond.get(), d);
          block(b.body, d);
        }
        block(s->elseBody, d);
        return;
      }
      case NodeKind::For: {
        const auto* s = static_cast<const For*>(n);
        visit(s->range.get(), d);
        block(s->body, d);
        return;
      }
      case NodeKind::While: {
        const auto* s = static_cast<const While*>(n);
        visit(s->cond.get(), d);
        block(s->body, d);
        return;
      }
      case NodeKind::Switch: {
        const auto* s = static_cast<const Switch*>(n);
        visit(s->subject.get(), d);
        for (const auto& c : s->cases) {
          visit(c.value.get(), d);
          block(c.body, d);
        }
        block(s->otherwise, d);
        return;
      }
      case NodeKind::Function:
        block(static_cast<const Function*>(n)->body, d);
        return;
      case NodeKind::Program: {
        const auto* p = static_cast<const Program*>(n);
        for (const auto& f : p->functions) visit(f.get(), d);
        block(p->scriptBody, d);
        return;
      }
    }
  }
};

}  // namespace

TreeStats collectStats(const Node& node) {
  StatsWalker w;
  w.visit(&node, 1);
  return w.stats;
}

}  // namespace mat2c::ast
