#include "ast/ast.hpp"

namespace mat2c::ast {

const char* toString(NodeKind kind) {
  switch (kind) {
    case NodeKind::NumberLit: return "NumberLit";
    case NodeKind::StringLit: return "StringLit";
    case NodeKind::Ident: return "Ident";
    case NodeKind::Unary: return "Unary";
    case NodeKind::Binary: return "Binary";
    case NodeKind::Transpose: return "Transpose";
    case NodeKind::Range: return "Range";
    case NodeKind::Colon: return "Colon";
    case NodeKind::End: return "End";
    case NodeKind::CallIndex: return "CallIndex";
    case NodeKind::MatrixLit: return "MatrixLit";
    case NodeKind::Assign: return "Assign";
    case NodeKind::ExprStmt: return "ExprStmt";
    case NodeKind::If: return "If";
    case NodeKind::For: return "For";
    case NodeKind::While: return "While";
    case NodeKind::Switch: return "Switch";
    case NodeKind::Break: return "Break";
    case NodeKind::Continue: return "Continue";
    case NodeKind::Return: return "Return";
    case NodeKind::Function: return "Function";
    case NodeKind::Program: return "Program";
  }
  return "?";
}

const char* toString(UnaryOp op) {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::Plus: return "+";
    case UnaryOp::Not: return "~";
  }
  return "?";
}

const char* toString(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::MatMul: return "*";
    case BinaryOp::ElemMul: return ".*";
    case BinaryOp::MatDiv: return "/";
    case BinaryOp::ElemDiv: return "./";
    case BinaryOp::MatLeftDiv: return "\\";
    case BinaryOp::ElemLeftDiv: return ".\\";
    case BinaryOp::MatPow: return "^";
    case BinaryOp::ElemPow: return ".^";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "~=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::AndAnd: return "&&";
    case BinaryOp::OrOr: return "||";
  }
  return "?";
}

bool isComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return true;
    default:
      return false;
  }
}

bool isElementwise(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::ElemMul:
    case BinaryOp::ElemDiv:
    case BinaryOp::ElemLeftDiv:
    case BinaryOp::ElemPow:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::And:
    case BinaryOp::Or:
      return true;
    default:
      return false;
  }
}

const Function* Program::findFunction(const std::string& name) const {
  for (const auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

}  // namespace mat2c::ast
