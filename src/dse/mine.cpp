// Layer 1 — idiom mining over post-optimization LIR.
//
// Membership is restricted to expression kinds the VM charges as exactly one
// ISA op per execution (loads, splats, neg/conj, add/sub/mul, fma, plus the
// enclosing Store). That restriction is what makes the whole DSE analytic:
// a fused candidate's saving is the sum of its members' per-issue costs
// minus the fused issue cost, and the VM FusedCosting hook reproduces that
// number exactly (vm_test asserts it). Decomposed ops (div, transcendentals,
// complex abs) charge more than once and are deliberately not members.
#include <algorithm>
#include <map>
#include <optional>

#include "dse/dse.hpp"
#include "support/string_utils.hpp"

namespace mat2c::dse {
namespace {

using lir::Expr;
using lir::ExprKind;
using lir::Stmt;
using lir::StmtKind;

/// The single ISA op the VM charges for `e`, or nullopt when `e` is not an
/// eligible pattern member. Mirrors vm.cpp's charge sites exactly.
std::optional<isa::Op> chargedOp(const Expr& e) {
  using isa::Op;
  bool vec = e.type.isVector();
  bool cplx = e.type.scalar == lir::Scalar::C64;
  bool fp = cplx || e.type.scalar == lir::Scalar::F64;
  switch (e.kind) {
    case ExprKind::Load:
      if (!fp) return std::nullopt;
      return vec ? (cplx ? Op::VLoadC : Op::VLoadF) : (cplx ? Op::LoadC : Op::LoadF);
    case ExprKind::Splat:
      if (!fp) return std::nullopt;
      return cplx ? Op::VSplatC : Op::VSplatF;
    case ExprKind::Unary:
      if (!fp) return std::nullopt;
      if (e.unOp == lir::UnOp::Neg)
        return vec ? (cplx ? Op::VNegC : Op::VNegF) : (cplx ? Op::NegC : Op::NegF);
      if (e.unOp == lir::UnOp::Conj) return vec ? Op::VConjC : Op::ConjC;
      return std::nullopt;
    case ExprKind::Binary:
      if (!fp) return std::nullopt;
      switch (e.binOp) {
        case lir::BinOp::Add:
          return vec ? (cplx ? Op::VAddC : Op::VAddF) : (cplx ? Op::AddC : Op::AddF);
        case lir::BinOp::Sub:
          return vec ? (cplx ? Op::VSubC : Op::VSubF) : (cplx ? Op::SubC : Op::SubF);
        case lir::BinOp::Mul:
          return vec ? (cplx ? Op::VMulC : Op::VMulF) : (cplx ? Op::MulC : Op::MulF);
        default:
          return std::nullopt;
      }
    case ExprKind::Fma:
      return vec ? (cplx ? Op::VFmaC : Op::VFmaF) : (cplx ? Op::FmaC : Op::FmaF);
    default:
      return std::nullopt;
  }
}

/// Dataflow operands a pattern may extend into. Load/Store index trees are
/// address math (AGU territory), not datapath, so patterns never cross them.
std::vector<const Expr*> dataOperands(const Expr& e) {
  std::vector<const Expr*> kids;
  if (e.kind == ExprKind::Load) return kids;
  if (e.a) kids.push_back(e.a.get());
  if (e.b) kids.push_back(e.b.get());
  if (e.c) kids.push_back(e.c.get());
  return kids;
}

/// A pattern occurrence under construction: a connected subtree of eligible
/// nodes.
struct PatNode {
  const Expr* e = nullptr;
  isa::Op op{};
  std::vector<PatNode> kids;
};

int patSize(const PatNode& p) {
  int n = 1;
  for (const auto& k : p.kids) n += patSize(k);
  return n;
}

/// Canonical encoding: mnemonic of each node with child encodings sorted, so
/// operand position does not split idioms (add(mul, ld) == add(ld, mul); the
/// fused datapath routes operands either way). Vector and scalar forms hash
/// differently (distinct mnemonics); lane width does not (same mnemonic).
std::string encode(const PatNode& p) {
  std::string s = isa::mnemonic(p.op);
  if (p.kids.empty()) return s;
  std::vector<std::string> parts;
  parts.reserve(p.kids.size());
  for (const auto& k : p.kids) parts.push_back(encode(k));
  std::sort(parts.begin(), parts.end());
  return s + "(" + join(parts, ", ") + ")";
}

void collect(const PatNode& p, std::vector<const Expr*>& nodes, std::vector<isa::Op>& ops) {
  nodes.push_back(p.e);
  ops.push_back(p.op);
  for (const auto& k : p.kids) collect(k, nodes, ops);
}

constexpr int kMaxPatternSize = 4;
constexpr std::size_t kMaxInstancesPerFunction = 50000;

/// All connected patterns rooted at `e` with at most `budget` nodes
/// (including singletons — callers filter by size).
std::vector<PatNode> patternsFrom(const Expr& e, int budget) {
  std::vector<PatNode> out;
  auto op = chargedOp(e);
  if (!op) return out;
  out.push_back({&e, *op, {}});
  if (budget <= 1) return out;

  std::vector<const Expr*> kids;
  std::vector<std::vector<PatNode>> kidPats;
  for (const Expr* k : dataOperands(e)) {
    auto pats = patternsFrom(*k, budget - 1);
    if (!pats.empty()) {
      kids.push_back(k);
      kidPats.push_back(std::move(pats));
    }
  }
  if (kids.empty()) return out;

  // Every assignment of (absent | one sub-pattern) per eligible child, total
  // size capped by budget. Child counts are <= 3 and budgets <= 4, so this
  // enumeration stays tiny.
  std::vector<PatNode> chosen;
  auto emit = [&](auto&& self, std::size_t i, int remaining) -> void {
    if (i == kidPats.size()) {
      if (!chosen.empty()) out.push_back({&e, *op, chosen});
      return;
    }
    self(self, i + 1, remaining);  // child absent
    for (const auto& p : kidPats[i]) {
      int sz = patSize(p);
      if (sz > remaining) continue;
      chosen.push_back(p);
      self(self, i + 1, remaining - sz);
      chosen.pop_back();
    }
  };
  emit(emit, 0, budget - 1);
  return out;
}

struct Miner {
  const lir::Function& fn;
  const vm::StmtProfile& profile;
  std::vector<IdiomInstance> out;

  double dynOf(const Stmt& s) const {
    auto it = profile.find(&s);
    return it == profile.end() ? 0.0 : static_cast<double>(it->second);
  }

  void addInstance(const PatNode& root, const Stmt* store, isa::Op storeOp, double dyn) {
    if (out.size() >= kMaxInstancesPerFunction) return;
    IdiomInstance inst;
    inst.root = root.e;
    inst.store = store;
    inst.dynCount = dyn;
    if (store) {
      inst.signature = std::string(isa::mnemonic(storeOp)) + "(" + encode(root) + ")";
      inst.ops.push_back(storeOp);
    } else {
      inst.signature = encode(root);
    }
    collect(root, inst.nodes, inst.ops);
    inst.hash = fnv1a64(inst.signature);
    out.push_back(std::move(inst));
  }

  /// Emits every pattern of size 2..4 rooted at each node of `e`'s tree.
  void mineExpr(const Expr& e, double dyn) {
    for (const auto& p : patternsFrom(e, kMaxPatternSize))
      if (patSize(p) >= 2) addInstance(p, nullptr, isa::Op::AddF, dyn);
    if (e.a) mineExpr(*e.a, dyn);
    if (e.b) mineExpr(*e.b, dyn);
    if (e.c) mineExpr(*e.c, dyn);
    // Index subtrees are skipped: patterns never extend into address math.
  }

  void mineStore(const Stmt& s, double dyn) {
    mineExpr(*s.value, dyn);
    lir::Scalar elem;
    std::int64_t numel;
    if (!fn.arrayInfo(s.name, elem, numel)) return;
    bool cplx = elem == lir::Scalar::C64;
    bool vec = s.value->type.isVector();
    isa::Op storeOp = vec ? (cplx ? isa::Op::VStoreC : isa::Op::VStoreF)
                          : (cplx ? isa::Op::StoreC : isa::Op::StoreF);
    for (const auto& p : patternsFrom(*s.value, kMaxPatternSize - 1))
      addInstance(p, &s, storeOp, dyn);
  }

  void mineBlock(const std::vector<lir::StmtPtr>& body) {
    for (const auto& sp : body) {
      const Stmt& s = *sp;
      double dyn = dynOf(s);
      switch (s.kind) {
        case StmtKind::DeclScalar:
        case StmtKind::Assign:
          if (s.value && dyn > 0) mineExpr(*s.value, dyn);
          break;
        case StmtKind::Store:
          if (dyn > 0) mineStore(s, dyn);
          break;
        case StmtKind::For:
          mineBlock(s.body);
          break;
        case StmtKind::While:
          if (s.cond && dyn > 0) mineExpr(*s.cond, dyn);
          mineBlock(s.body);
          break;
        case StmtKind::If:
          if (s.cond && dyn > 0) mineExpr(*s.cond, dyn);
          mineBlock(s.body);
          mineBlock(s.elseBody);
          break;
        default:
          break;
      }
    }
  }
};

}  // namespace

std::vector<IdiomInstance> mineFunction(const lir::Function& fn,
                                        const vm::StmtProfile& profile) {
  Miner m{fn, profile, {}};
  m.mineBlock(fn.body);
  return m.out;
}

std::vector<MinedIdiom> aggregateIdioms(
    const std::vector<std::vector<IdiomInstance>>& perKernel) {
  std::map<std::uint64_t, MinedIdiom> byHash;
  for (const auto& instances : perKernel) {
    std::map<std::uint64_t, double> kernelCounts;
    for (const auto& inst : instances) kernelCounts[inst.hash] += inst.dynCount;
    for (const auto& inst : instances) {
      auto [it, inserted] = byHash.try_emplace(inst.hash);
      if (inserted) {
        it->second.hash = inst.hash;
        it->second.signature = inst.signature;
        it->second.ops = inst.ops;
      }
      it->second.dynCount += inst.dynCount;
    }
    for (const auto& [hash, count] : kernelCounts) {
      (void)count;
      ++byHash[hash].kernels;
    }
  }
  std::vector<MinedIdiom> out;
  out.reserve(byHash.size());
  for (auto& [hash, idiom] : byHash) out.push_back(std::move(idiom));
  std::sort(out.begin(), out.end(), [](const MinedIdiom& a, const MinedIdiom& b) {
    if (a.dynCount != b.dynCount) return a.dynCount > b.dynCount;
    return a.signature < b.signature;
  });
  return out;
}

}  // namespace mat2c::dse
