// Layer 2 — candidate custom instructions and the hardware-cost model.
#include <algorithm>
#include <cmath>
#include <set>

#include "dse/dse.hpp"
#include "support/string_utils.hpp"

namespace mat2c::dse {
namespace {

/// Abstract datapath units one lane of `op` costs. Calibrated against
/// hwCostEstimate's per-feature increments (fma = 1 unit/lane, cmul = 6,
/// cmac = +2) so fused candidates compete on the same scale as features.
double unitPerLane(isa::Op op) {
  using isa::Op;
  switch (op) {
    case Op::MulF: case Op::VMulF:
      return 1.0;
    case Op::AddF: case Op::SubF: case Op::NegF:
    case Op::VAddF: case Op::VSubF: case Op::VNegF:
      return 0.5;
    case Op::FmaF: case Op::VFmaF:
      return 1.5;
    case Op::MulC: case Op::VMulC:
      return 6.0;
    case Op::FmaC: case Op::VFmaC:
      return 8.0;
    case Op::AddC: case Op::SubC: case Op::NegC:
    case Op::VAddC: case Op::VSubC: case Op::VNegC:
      return 1.0;
    case Op::ConjC: case Op::VConjC:
      return 0.5;
    case Op::VSplatF: case Op::VSplatC:
      return 0.5;
    case Op::LoadF: case Op::LoadC: case Op::StoreF: case Op::StoreC:
    case Op::VLoadF: case Op::VLoadC: case Op::VStoreF: case Op::VStoreC:
      return 1.0;  // an extra memory-port connection into the fused datapath
    default:
      return 1.0;
  }
}

std::string shortToken(isa::Op op) {
  std::string t = isa::mnemonic(op);
  std::replace(t.begin(), t.end(), '.', '_');
  return t;
}

}  // namespace

std::vector<CandidateInstr> synthesizeCandidates(const std::vector<MinedIdiom>& idioms,
                                                 const isa::IsaDescription& costRef,
                                                 int topK) {
  std::vector<CandidateInstr> out;
  for (const auto& idiom : idioms) {
    if (idiom.ops.size() < 2) continue;
    CandidateInstr c;
    c.hash = idiom.hash;
    c.signature = idiom.signature;
    c.ops = idiom.ops;
    c.dynCount = idiom.dynCount;
    c.kernels = idiom.kernels;

    double sum = 0.0, maxMember = 0.0;
    for (isa::Op op : idiom.ops) {
      double cost = costRef.cost(op);
      sum += cost;
      maxMember = std::max(maxMember, cost);
      c.hwUnits += unitPerLane(op);
    }
    // Dual-issue fusion: the fused instruction still flows every member
    // micro-op, but two per cycle, and never beats the slowest member.
    c.cycles = std::max(maxMember, std::ceil(sum / 2.0));
    c.latency = sum;
    c.estSavedCycles = (sum - c.cycles) * idiom.dynCount;

    // Name: member mnemonics with repeats collapsed ("fused.vfma_f64+2vld_f64").
    std::vector<std::string> tokens;
    for (std::size_t i = 0; i < idiom.ops.size(); ++i) {
      int repeat = 1;
      bool seenBefore = false;
      for (std::size_t j = 0; j < idiom.ops.size(); ++j) {
        if (idiom.ops[j] != idiom.ops[i]) continue;
        if (j < i) { seenBefore = true; break; }
        if (j > i) ++repeat;
      }
      if (seenBefore) continue;
      std::string t = shortToken(idiom.ops[i]);
      tokens.push_back(repeat > 1 ? std::to_string(repeat) + t : t);
    }
    c.name = "fused." + join(tokens, "+");
    if (c.estSavedCycles > 0.0) out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const CandidateInstr& a, const CandidateInstr& b) {
    if (a.estSavedCycles != b.estSavedCycles) return a.estSavedCycles > b.estSavedCycles;
    return a.signature < b.signature;
  });
  if (topK >= 0 && out.size() > static_cast<std::size_t>(topK))
    out.resize(static_cast<std::size_t>(topK));
  return out;
}

double hwCostEstimate(const isa::IsaDescription& d) {
  double cost = 3.0;  // scalar core: ALU + FPU + control
  if (d.lanesF64() > 1) cost += 2.0 * d.lanesF64();  // SIMD f64 datapath
  if (d.hasFma()) cost += 1.0 * d.lanesF64();        // fused MAC per lane
  if (d.hasCmul()) cost += 6.0 * d.lanesC64();       // complex multiply unit
  if (d.hasCmac()) cost += 2.0 * d.lanesC64();       // complex accumulate extension
  if (d.hasZol()) cost += 1.0;                       // hardware loop registers
  if (d.hasAgu()) cost += 2.0;                       // address-generation units
  cost += d.memLanes();                              // memory-port width
  return cost;
}

std::string DesignPoint::label() const {
  std::string s = "w" + std::to_string(lanesF64);
  std::vector<std::string> feats;
  if (fma) feats.push_back("fma");
  if (cmul) feats.push_back("cmul");
  if (cmac) feats.push_back("cmac");
  s += feats.empty() ? " plain" : " " + join(feats, "+");
  if (zol || agu) s += " zol+agu";
  s += " m" + std::to_string(memLanes);
  if (!fused.empty()) s += " +" + std::to_string(fused.size()) + " fused";
  return s;
}

isa::IsaDescription toIsa(const DesignPoint& p, const std::string& name) {
  isa::IsaDescription d = isa::IsaDescription::preset("scalar");
  d.setName(name);
  d.setLanes(p.lanesF64, p.lanesC64);
  d.setMemLanes(p.memLanes);
  if (p.fma) d.setFeature("fma", true);
  if (p.cmul) d.setFeature("cmul", true);
  if (p.cmac) d.setFeature("cmac", true);
  if (p.zol) d.setFeature("zol", true);
  if (p.agu) d.setFeature("agu", true);
  return d;
}

double tileFused(const std::vector<IdiomInstance>& instances,
                 const std::vector<CandidateInstr>& candidates,
                 const std::vector<int>& selection, const isa::IsaDescription& variant,
                 vm::FusedCosting* out) {
  // Most-profitable-per-issue candidates claim nodes first.
  struct Sel {
    const CandidateInstr* c;
    double perIssue;  // member-cost sum minus fused cycles under `variant`
  };
  std::vector<Sel> order;
  for (int idx : selection) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= candidates.size()) continue;
    const CandidateInstr& c = candidates[static_cast<std::size_t>(idx)];
    double memberSum = 0.0;
    for (isa::Op op : c.ops) memberSum += variant.cost(op);
    order.push_back({&c, memberSum - c.cycles});
  }
  std::sort(order.begin(), order.end(), [](const Sel& a, const Sel& b) {
    if (a.perIssue != b.perIssue) return a.perIssue > b.perIssue;
    return a.c->name < b.c->name;
  });

  double saved = 0.0;
  std::set<const lir::Expr*> used;
  std::set<const lir::Stmt*> usedStores;
  for (const Sel& sel : order) {
    if (sel.perIssue <= 0.0) continue;
    for (const IdiomInstance& inst : instances) {
      if (inst.hash != sel.c->hash || inst.dynCount <= 0.0) continue;
      bool overlap = inst.store && usedStores.count(inst.store);
      for (const lir::Expr* n : inst.nodes)
        if (overlap || used.count(n)) { overlap = true; break; }
      if (overlap) continue;
      for (const lir::Expr* n : inst.nodes) used.insert(n);
      if (inst.store) usedStores.insert(inst.store);
      saved += sel.perIssue * inst.dynCount;
      if (out) {
        out->roots[inst.root] = {sel.c->name, sel.c->cycles};
        for (const lir::Expr* n : inst.nodes) out->members.insert(n);
        if (inst.store) out->storeMembers.insert(inst.store);
      }
    }
  }
  return saved;
}

}  // namespace mat2c::dse
