// Automatic custom-instruction design (ROADMAP item 5).
//
// The paper consumes a hand-written parameterized ISA description; the ASIP
// literature derives the instruction set from the workload instead. This
// subsystem closes that loop over the nine oracle-checked corpus kernels in
// three layers:
//
//   1. Idiom mining — walk the post-optimization LIR of every kernel and
//      extract recurring connected dataflow idioms (2-4 op patterns such as
//      mul->add, conj->mul, load->fma->store), weighted by dynamic execution
//      frequency from the VM statement profile and deduplicated by a
//      canonical pattern hash.
//   2. Candidate synthesis + cost model — the top idioms become candidate
//      fused custom instructions with an issue cost, a latency, and a
//      hardware-cost estimate in adder/multiplier/port units; the design
//      space is parameterized over SIMD lanes, complex-unit issue, fused-op
//      inclusion, and memory ports.
//   3. Exploration + emission — enumerate the space, score every point as
//      (geomean cycle-model speedup across the corpus) vs (hardware cost),
//      and emit the Pareto frontier plus an auto-generated ISA description
//      in the docs/isa_format.md textual format that IsaDescription::parse
//      loads unchanged.
//
// Structural dimensions (lanes, fma/cmul/cmac — these change what the
// compiler emits) are compiled and VM-measured once per configuration;
// cost-only dimensions (zol/agu, memory ports, fused-op subsets) are
// rescored analytically from the measured per-op issue counts, which is
// exact because the VM's total is exactly sum(count[op] * cost[op]).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "driver/kernels.hpp"
#include "isa/isa.hpp"
#include "lir/lir.hpp"
#include "vm/vm.hpp"

namespace mat2c::dse {

// ---------------------------------------------------------------------------
// Layer 1 — idiom mining
// ---------------------------------------------------------------------------

/// One concrete occurrence of a dataflow idiom in a specific Function: a
/// connected set of 2-4 expression nodes (optionally rooted in the enclosing
/// Store statement), each of which the VM charges exactly one ISA op per
/// execution. Node pointers refer into the mined Function, which must stay
/// alive while instances are used.
struct IdiomInstance {
  std::uint64_t hash = 0;               // canonical pattern hash
  std::string signature;                // e.g. "vfma.f64(vld.f64, vld.f64)"
  const lir::Expr* root = nullptr;      // pattern root (null for store-rooted)
  const lir::Stmt* store = nullptr;     // set when the enclosing Store is a member
  std::vector<const lir::Expr*> nodes;  // all member expressions
  std::vector<isa::Op> ops;             // the VM-charged op of each member
  double dynCount = 0.0;                // dynamic executions of the enclosing stmt
};

/// Mines every connected 2-4 node idiom from `fn`, weighting each instance by
/// the enclosing statement's dynamic execution count in `profile`. Instances
/// overlap freely (a 3-chain also yields its 2-chains); non-overlapping
/// selection happens later in tileFused(). Only node kinds the VM charges as
/// exactly one op are members (loads, stores, splats, neg/conj, add/sub/mul,
/// fma), so fused-candidate savings computed from instances match the VM's
/// FusedCosting hook exactly.
std::vector<IdiomInstance> mineFunction(const lir::Function& fn,
                                        const vm::StmtProfile& profile);

/// A deduplicated idiom aggregated across the corpus.
struct MinedIdiom {
  std::uint64_t hash = 0;
  std::string signature;
  std::vector<isa::Op> ops;
  double dynCount = 0.0;  // summed dynamic occurrences across all kernels
  int kernels = 0;        // number of kernels the idiom appears in
};

/// Aggregates per-kernel instance lists by canonical hash; result is sorted
/// by descending dynCount.
std::vector<MinedIdiom> aggregateIdioms(
    const std::vector<std::vector<IdiomInstance>>& perKernel);

// ---------------------------------------------------------------------------
// Layer 2 — candidate synthesis + cost model
// ---------------------------------------------------------------------------

/// A synthesized fused custom instruction: one idiom promoted to a single
/// issue with a cycle cost, latency, and incremental hardware cost.
struct CandidateInstr {
  std::uint64_t hash = 0;  // pattern hash this candidate fuses
  std::string name;        // VM byOp key, e.g. "fused.vfma_f64+2vld_f64"
  std::string signature;
  std::vector<isa::Op> ops;
  double cycles = 1.0;   // issue cost: max(member, ceil(sum/2)) — dual-issue fusion
  double latency = 0.0;  // sum of member costs (pipeline depth estimate)
  double hwUnits = 0.0;  // incremental datapath units per SIMD lane
  double dynCount = 0.0;
  int kernels = 0;
  double estSavedCycles = 0.0;  // (sum member costs - cycles) * dynCount at costRef
};

/// Promotes the most profitable mined idioms to candidates, ranked by
/// estimated saved cycles under `costRef`'s cost table; keeps the top `topK`.
std::vector<CandidateInstr> synthesizeCandidates(const std::vector<MinedIdiom>& idioms,
                                                 const isa::IsaDescription& costRef,
                                                 int topK);

/// Hardware-cost estimate of a target in abstract datapath units (adders,
/// multipliers, memory ports, control): base scalar core + SIMD datapath
/// scaled by lanes + per-feature unit costs + memory-port width. The same
/// scale scores fused candidates, so (speedup, hwCost) points are comparable
/// across the whole design space. dspx lands at 70 units.
double hwCostEstimate(const isa::IsaDescription& d);

// ---------------------------------------------------------------------------
// Layer 3 — exploration + emission
// ---------------------------------------------------------------------------

/// One point in the parameterized design space.
struct DesignPoint {
  int lanesF64 = 1;
  int lanesC64 = 1;
  int memLanes = 8;
  bool fma = false;
  bool cmul = false;
  bool cmac = false;  // requires cmul
  bool zol = false;   // zero-overhead loops + AGUs toggle together
  bool agu = false;
  std::vector<int> fused;  // indices into ExploreResult::candidates

  std::string label() const;  // e.g. "w8 fma+cmul+cmac zol+agu m8"
};

/// Materializes a point as a loadable IsaDescription (fused entries excluded:
/// they are not expressible in the textual format and are costed via the VM
/// FusedCosting hook / analytic rescoring instead).
isa::IsaDescription toIsa(const DesignPoint& p, const std::string& name);

/// Greedy non-overlapping tiling of `instances` by the selected candidates
/// (most-profitable-first) under `variant` costs. Returns the analytic saved
/// cycles; when `out` is non-null, also fills the VM costing hook that
/// realizes exactly that saving, so analytic and measured totals agree.
double tileFused(const std::vector<IdiomInstance>& instances,
                 const std::vector<CandidateInstr>& candidates,
                 const std::vector<int>& selection, const isa::IsaDescription& variant,
                 vm::FusedCosting* out = nullptr);

struct PointScore {
  DesignPoint point;
  double geomean = 0.0;  // geomean speedup vs the scalar preset
  double hwCost = 0.0;
  std::map<std::string, double> kernelCycles;
  bool expressible = true;  // no fused ops -> emittable as an .isa file
  bool measured = false;    // cycles from a VM run (vs analytic rescoring)
};

struct ExploreOptions {
  /// Kernels to score; empty means kernels::dseCorpus().
  std::vector<kernels::KernelSpec> corpus;
  std::vector<int> laneWidths = {2, 4, 8, 16};
  std::vector<int> memLaneChoices = {4, 8, 16};
  int topCandidates = 4;     // fused candidates admitted to the space
  bool exploreFused = true;  // include fused-op inclusion as a dimension
  bool oracleCheckBest = true;  // validate the winning ISA vs the interpreter
  int maxIdioms = 16;           // mined idioms kept in the report
  std::ostream* progress = nullptr;  // optional progress lines (CLI)
};

struct ExploreResult {
  std::vector<MinedIdiom> idioms;        // ranked, truncated to maxIdioms
  std::vector<CandidateInstr> candidates;
  std::vector<PointScore> pareto;        // frontier, ascending hwCost
  PointScore best;     // expressible winner at hwCost <= dspx (VM-measured)
  PointScore dspxRef;  // the hand-written dspx preset (VM-measured)
  std::map<std::string, double> scalarCycles;   // speedup baseline per kernel
  std::map<std::string, double> bestMaxAbsErr;  // oracle |err| at best point
  isa::IsaDescription bestIsa;
  int pointsEvaluated = 0;
};

/// Runs the full mine -> synthesize -> explore loop. Throws StructuredError /
/// std::runtime_error on compile or oracle failures.
ExploreResult explore(const ExploreOptions& opts = {});

// -- reporting / emission ----------------------------------------------------

std::string idiomTable(const ExploreResult& r);
std::string candidateTable(const ExploreResult& r);
std::string paretoTable(const ExploreResult& r);

/// Full text of the auto-generated examples/isa/auto_*.isa file: a comment
/// header (provenance, score, unexpressible fused candidates) followed by
/// bestIsa.serialize(); IsaDescription::parse loads it unchanged.
std::string isaFileText(const ExploreResult& r);

/// BENCH_dse.json document for tools/check_perf.py: per-kernel cycles at the
/// best point vs the scalar baseline, geomean, hardware cost, and the dspx
/// reference block the gate compares against.
std::string benchJson(const ExploreResult& r);

}  // namespace mat2c::dse
