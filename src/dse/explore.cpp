// Layer 3 — design-space exploration and emission.
//
// Structural dimensions (SIMD width, fma/cmul/cmac) change what the compiler
// emits, so each structural configuration is compiled and VM-measured once
// per kernel (with the statement profile feeding the idiom miner). Cost-only
// dimensions (zol/agu, memory-port width, fused-op subsets) are rescored
// analytically from the measured per-op issue counts; that reconstruction is
// exact because the VM total is exactly sum(count[op] * cost[op]) and zeroed
// ops still record their counts.
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "driver/compiler.hpp"
#include "driver/report.hpp"
#include "dse/dse.hpp"
#include "support/string_utils.hpp"

namespace mat2c::dse {
namespace {

struct KernelEval {
  std::map<std::string, double> countByOp;
  std::vector<IdiomInstance> instances;
  std::shared_ptr<CompiledUnit> unit;  // keeps instance node pointers alive
};

struct StructuralEval {
  DesignPoint base;  // lanes + features; zol/agu/mem fixed at the run config
  std::vector<KernelEval> kernels;  // corpus order
};

CompiledUnit compileKernel(Compiler& compiler, const kernels::KernelSpec& spec,
                           const isa::IsaDescription& isa) {
  CompileOptions opts;
  opts.isa = isa;
  return compiler.compileSource(spec.source, spec.entry, spec.argSpecs, opts);
}

vm::RunResult runKernel(const CompiledUnit& unit, const kernels::KernelSpec& spec,
                        vm::StmtProfile* profile = nullptr) {
  vm::Machine machine(unit.isa());
  if (profile) machine.setProfile(profile);
  return machine.run(unit.fn(), spec.args);
}

double rescore(const std::map<std::string, double>& countByOp,
               const isa::IsaDescription& variant) {
  double total = 0.0;
  for (const auto& [mn, count] : countByOp) {
    auto op = isa::opFromMnemonic(mn);
    if (!op) throw std::runtime_error("dse: unknown mnemonic in VM counts: " + mn);
    total += variant.cost(*op) * count;
  }
  return total;
}

double geomeanOf(const std::vector<double>& xs) {
  double logSum = 0.0;
  for (double x : xs) logSum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(logSum / static_cast<double>(xs.size()));
}

/// Incremental hardware cost of one fused candidate at a design point: the
/// per-lane unit sum scaled by the SIMD width it is replicated across.
double fusedHwCost(const CandidateInstr& c, const DesignPoint& p) {
  bool vec = false, cplx = false;
  for (isa::Op op : c.ops) {
    vec = vec || isa::isVectorOp(op);
    cplx = cplx || isa::isComplexOp(op);
  }
  int lanes = vec ? (cplx ? p.lanesC64 : p.lanesF64) : 1;
  return c.hwUnits * lanes;
}

std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

void progressLine(const ExploreOptions& opts, const std::string& line) {
  if (opts.progress) *opts.progress << line << "\n";
}

}  // namespace

ExploreResult explore(const ExploreOptions& opts) {
  ExploreResult r;
  std::vector<kernels::KernelSpec> corpus =
      opts.corpus.empty() ? kernels::dseCorpus() : opts.corpus;
  if (corpus.empty()) throw std::invalid_argument("dse: empty corpus");
  Compiler compiler;

  // -- measured references: scalar baseline and the hand-written dspx --------
  progressLine(opts, "dse: measuring scalar and dspx references over " +
                         std::to_string(corpus.size()) + " kernels");
  isa::IsaDescription scalarIsa = isa::IsaDescription::preset("scalar");
  isa::IsaDescription dspxIsa = isa::IsaDescription::preset("dspx");
  PointScore scalarRef, dspxRef;
  scalarRef.point = DesignPoint{};  // w1 plain m8
  scalarRef.point.memLanes = scalarIsa.memLanes();
  dspxRef.point = DesignPoint{dspxIsa.lanesF64(), dspxIsa.lanesC64(), dspxIsa.memLanes(),
                              true, true, true, true, true, {}};
  scalarRef.measured = dspxRef.measured = true;
  scalarRef.hwCost = hwCostEstimate(scalarIsa);
  dspxRef.hwCost = hwCostEstimate(dspxIsa);
  std::vector<double> dspxSpeedups;
  for (const auto& spec : corpus) {
    auto scalarUnit = compileKernel(compiler, spec, scalarIsa);
    double scalarCycles = runKernel(scalarUnit, spec).cycles.total;
    r.scalarCycles[spec.name] = scalarCycles;
    scalarRef.kernelCycles[spec.name] = scalarCycles;
    auto dspxUnit = compileKernel(compiler, spec, dspxIsa);
    double dspxCycles = runKernel(dspxUnit, spec).cycles.total;
    dspxRef.kernelCycles[spec.name] = dspxCycles;
    dspxSpeedups.push_back(scalarCycles / dspxCycles);
  }
  scalarRef.geomean = 1.0;
  dspxRef.geomean = geomeanOf(dspxSpeedups);
  r.dspxRef = dspxRef;

  // -- structural sweep: compile + measure + mine ----------------------------
  struct FeatureSet { bool fma, cmul, cmac; };
  const FeatureSet featureSets[] = {{false, false, false}, {true, false, false},
                                    {false, true, false},  {true, true, false},
                                    {false, true, true},   {true, true, true}};
  std::vector<StructuralEval> structurals;
  for (int w : opts.laneWidths) {
    for (const FeatureSet& fs : featureSets) {
      StructuralEval se;
      se.base = DesignPoint{w, std::max(1, w / 2), 8, fs.fma, fs.cmul, fs.cmac,
                            true, true, {}};
      isa::IsaDescription runIsa = toIsa(se.base, "dse_probe");
      for (const auto& spec : corpus) {
        KernelEval ke;
        ke.unit = std::make_shared<CompiledUnit>(compileKernel(compiler, spec, runIsa));
        vm::StmtProfile profile;
        auto run = runKernel(*ke.unit, spec, &profile);
        ke.countByOp = run.cycles.countByOp;
        ke.instances = mineFunction(ke.unit->fn(), profile);
        se.kernels.push_back(std::move(ke));
      }
      std::string label = se.base.label();
      structurals.push_back(std::move(se));
      progressLine(opts, "dse: measured structural point " + label + " (" +
                             std::to_string(structurals.size()) + "/" +
                             std::to_string(opts.laneWidths.size() * 6) + ")");
    }
  }

  // -- idiom aggregation + candidate synthesis -------------------------------
  // Mine on the widest featureless configuration: with no fma/cmul/cmac the
  // idiom pass leaves mul->add and conj->mul chains unfused in the LIR, so
  // the miner rediscovers exactly the patterns the hand-written ASIP turned
  // into custom instructions.
  const StructuralEval* miningConfig = nullptr;
  for (const auto& se : structurals) {
    if (se.base.fma || se.base.cmul || se.base.cmac) continue;
    if (!miningConfig || se.base.lanesF64 > miningConfig->base.lanesF64)
      miningConfig = &se;
  }
  if (!miningConfig) throw std::logic_error("dse: no featureless structural config");
  std::vector<std::vector<IdiomInstance>> perKernel;
  for (const auto& ke : miningConfig->kernels) perKernel.push_back(ke.instances);
  std::vector<MinedIdiom> allIdioms = aggregateIdioms(perKernel);
  isa::IsaDescription costRef = toIsa(miningConfig->base, "dse_costref");
  r.candidates = synthesizeCandidates(allIdioms, costRef, opts.topCandidates);
  r.idioms = allIdioms;
  if (opts.maxIdioms >= 0 && r.idioms.size() > static_cast<std::size_t>(opts.maxIdioms))
    r.idioms.resize(static_cast<std::size_t>(opts.maxIdioms));
  progressLine(opts, "dse: mined " + std::to_string(allIdioms.size()) + " idioms, kept " +
                         std::to_string(r.candidates.size()) + " fused candidates");

  // -- point enumeration: analytic rescoring over cost-only dimensions ------
  std::vector<PointScore> pool = {scalarRef, dspxRef};
  for (const auto& se : structurals) {
    for (bool zolAgu : {true, false}) {
      for (int mem : opts.memLaneChoices) {
        DesignPoint p = se.base;
        p.memLanes = mem;
        p.zol = p.agu = zolAgu;
        isa::IsaDescription variant = toIsa(p, "dse_variant");
        PointScore ps;
        ps.point = p;
        ps.hwCost = hwCostEstimate(variant);
        std::vector<double> speedups;
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          double cycles = rescore(se.kernels[i].countByOp, variant);
          ps.kernelCycles[corpus[i].name] = cycles;
          speedups.push_back(r.scalarCycles[corpus[i].name] / cycles);
        }
        ps.geomean = geomeanOf(speedups);
        ++r.pointsEvaluated;
        pool.push_back(ps);

        if (!opts.exploreFused) continue;
        // Fused-op inclusion: grow the candidate set most-profitable-first.
        std::vector<int> selection;
        for (int ci = 0; ci < static_cast<int>(r.candidates.size()); ++ci) {
          selection.push_back(ci);
          PointScore fs = ps;
          fs.point.fused = selection;
          fs.expressible = false;
          std::vector<double> fSpeedups;
          for (std::size_t i = 0; i < corpus.size(); ++i) {
            double saved =
                tileFused(se.kernels[i].instances, r.candidates, selection, variant);
            double cycles = ps.kernelCycles[corpus[i].name] - saved;
            fs.kernelCycles[corpus[i].name] = cycles;
            fSpeedups.push_back(r.scalarCycles[corpus[i].name] / cycles);
          }
          fs.geomean = geomeanOf(fSpeedups);
          fs.hwCost = ps.hwCost;
          for (int ci2 : selection) fs.hwCost += fusedHwCost(r.candidates[ci2], p);
          ++r.pointsEvaluated;
          pool.push_back(fs);
        }
      }
    }
  }
  progressLine(opts, "dse: scored " + std::to_string(r.pointsEvaluated) +
                         " design points");

  // -- Pareto frontier (max geomean, min hwCost) -----------------------------
  std::sort(pool.begin(), pool.end(), [](const PointScore& a, const PointScore& b) {
    if (a.hwCost != b.hwCost) return a.hwCost < b.hwCost;
    return a.geomean > b.geomean;
  });
  double bestSoFar = 0.0;
  for (const auto& ps : pool) {
    if (ps.geomean > bestSoFar + 1e-12) {
      r.pareto.push_back(ps);
      bestSoFar = ps.geomean;
    }
  }

  // -- pick the emitted winner: best expressible point at <= dspx hw cost ----
  const PointScore* winner = nullptr;
  for (const auto& ps : pool) {
    if (!ps.expressible || ps.hwCost > dspxRef.hwCost + 1e-9) continue;
    if (!winner || ps.geomean > winner->geomean + 1e-12 ||
        (std::abs(ps.geomean - winner->geomean) <= 1e-12 && ps.hwCost < winner->hwCost))
      winner = &ps;
  }
  if (!winner) throw std::logic_error("dse: no expressible point at <= dspx hw cost");
  r.best = *winner;
  r.bestIsa = toIsa(r.best.point, "auto_dse");

  // -- confirm the winner end-to-end: emitted text -> parse -> compile -> VM,
  //    oracle-checked against the reference interpreter ----------------------
  DiagnosticEngine diags;
  isa::IsaDescription reloaded = isa::IsaDescription::parse(r.bestIsa.serialize(), diags);
  if (diags.hasErrors() || reloaded.fingerprint() != r.bestIsa.fingerprint())
    throw std::logic_error("dse: emitted ISA does not round-trip through parse()");
  std::vector<double> bestSpeedups;
  for (const auto& spec : corpus) {
    auto unit = compileKernel(compiler, spec, reloaded);
    double cycles = runKernel(unit, spec).cycles.total;
    r.best.kernelCycles[spec.name] = cycles;
    bestSpeedups.push_back(r.scalarCycles[spec.name] / cycles);
    if (opts.oracleCheckBest) {
      r.bestMaxAbsErr[spec.name] =
          validateAgainstInterpreter(spec.source, spec.entry, unit, spec.args);
    }
  }
  r.best.geomean = geomeanOf(bestSpeedups);
  r.best.measured = true;
  progressLine(opts, "dse: winner " + r.best.point.label() + " geomean " +
                         fmt(r.best.geomean) + "x at hw " + fmt(r.best.hwCost, 0) +
                         " (dspx " + fmt(dspxRef.geomean) + "x at " +
                         fmt(dspxRef.hwCost, 0) + ")");
  return r;
}

// ---------------------------------------------------------------------------
// Reporting / emission
// ---------------------------------------------------------------------------

std::string idiomTable(const ExploreResult& r) {
  report::Table t({"idiom (dataflow pattern)", "ops", "kernels", "dyn count"});
  for (const auto& idiom : r.idioms) {
    t.addRow({idiom.signature, std::to_string(idiom.ops.size()),
              std::to_string(idiom.kernels), report::Table::cycles(idiom.dynCount)});
  }
  return t.toString();
}

std::string candidateTable(const ExploreResult& r) {
  report::Table t({"candidate", "pattern", "cycles", "latency", "hw/lane",
                   "est. saved cycles"});
  for (const auto& c : r.candidates) {
    t.addRow({c.name, c.signature, report::Table::num(c.cycles, 0),
              report::Table::num(c.latency, 0), report::Table::num(c.hwUnits, 1),
              report::Table::cycles(c.estSavedCycles)});
  }
  return t.toString();
}

std::string paretoTable(const ExploreResult& r) {
  report::Table t({"design point", "hw cost", "geomean speedup", "emittable", ""});
  std::string dspxLabel = r.dspxRef.point.label();
  std::string bestLabel = r.best.point.label();
  for (const auto& ps : r.pareto) {
    std::string label = ps.point.label();
    std::string note;
    if (label == dspxLabel) note = "= hand-written dspx";
    if (label == bestLabel && ps.expressible) note = "<- emitted auto_dse";
    t.addRow({label, report::Table::num(ps.hwCost, 0), report::Table::num(ps.geomean, 2) + "x",
              ps.expressible ? "yes" : "no", note});
  }
  return t.toString();
}

std::string isaFileText(const ExploreResult& r) {
  std::ostringstream os;
  os << "# Auto-generated by `mat2c explore` (src/dse): ISA design-space\n"
     << "# exploration over the " << r.scalarCycles.size()
     << "-kernel corpus. Do not edit; regenerate with\n"
     << "#   mat2c explore --emit-isa <this file>\n"
     << "# point:   " << r.best.point.label() << "\n"
     << "# scored:  geomean " << fmt(r.best.geomean) << "x vs scalar at hw cost "
     << fmt(r.best.hwCost, 0) << " units\n"
     << "# dspx:    geomean " << fmt(r.dspxRef.geomean) << "x at hw cost "
     << fmt(r.dspxRef.hwCost, 0) << " units (hand-written reference)\n";
  if (!r.candidates.empty()) {
    os << "# fused candidates mined but not expressible in this format\n"
       << "# (costed via the VM fused-instruction hook; see docs/dse.md):\n";
    for (const auto& c : r.candidates) {
      os << "#   " << c.name << "  cycles=" << fmt(c.cycles, 0)
         << "  est. saved cycles=" << fmt(c.estSavedCycles, 0) << "\n";
    }
  }
  os << r.bestIsa.serialize();
  return os.str();
}

std::string benchJson(const ExploreResult& r) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << "{\n  \"bench\": \"dse\",\n  \"isa\": \"" << r.bestIsa.name() << "\",\n"
     << "  \"point\": \"" << r.best.point.label() << "\",\n  \"kernels\": {\n";
  std::size_t i = 0;
  for (const auto& [name, cycles] : r.best.kernelCycles) {
    double baseline = r.scalarCycles.at(name);
    double err = 0.0;
    auto it = r.bestMaxAbsErr.find(name);
    if (it != r.bestMaxAbsErr.end()) err = it->second;
    os.precision(0);
    os << "    \"" << name << "\": {\"baseline_cycles\": " << baseline
       << ", \"proposed_cycles\": " << cycles << ", \"speedup\": ";
    os.precision(4);
    os << (baseline / cycles) << ", \"max_abs_err\": ";
    os.unsetf(std::ios::fixed);
    os << std::scientific;
    os.precision(3);
    os << err;
    os.unsetf(std::ios::scientific);
    os.setf(std::ios::fixed);
    os << "}";
    if (++i < r.best.kernelCycles.size()) os << ",";
    os << "\n";
  }
  os.precision(4);
  os << "  },\n  \"geomean_speedup\": " << r.best.geomean << ",\n";
  os.precision(1);
  os << "  \"hw_cost\": " << r.best.hwCost << ",\n"
     << "  \"points_evaluated\": " << r.pointsEvaluated << ",\n";
  os.precision(4);
  os << "  \"reference\": {\"name\": \"dspx\", \"geomean_speedup\": " << r.dspxRef.geomean
     << ", \"hw_cost\": ";
  os.precision(1);
  os << r.dspxRef.hwCost << "}\n}\n";
  return os.str();
}

}  // namespace mat2c::dse
