// ANSI C code generation from LIR.
//
// This is the compiler's real output (the VM is the evaluation substrate).
// The emitted translation unit is self-contained: it embeds a runtime header
// with the value types (mat2c_c64, vector structs) and *portable fallback
// definitions of every ASIP intrinsic*, so — exactly as the paper claims —
// the generated code "can be used as input to any C/C++ compiler" while the
// ASIP toolchain can map the intrinsic names onto custom instructions.
#pragma once

#include <string>

#include "isa/isa.hpp"
#include "lir/lir.hpp"

namespace mat2c::codegen {

struct EmitOptions {
  bool comments = true;        // emit section comments
  bool embedRuntime = true;    // prepend the runtime header (self-contained TU)
};

/// The kernel as a C translation unit.
std::string emitC(const lir::Function& fn, const isa::IsaDescription& isa,
                  const EmitOptions& options = {});

/// Only the function definition (no runtime header).
std::string emitFunction(const lir::Function& fn, const isa::IsaDescription& isa,
                         const EmitOptions& options = {});

/// The C prototype, e.g. "void fir(const double* x, ..., double* y)".
std::string emitSignature(const lir::Function& fn);

/// Runtime support header for `isa`: value types, complex helpers, intrinsic
/// fallbacks for every instruction the description advertises.
std::string runtimeHeader(const isa::IsaDescription& isa);

}  // namespace mat2c::codegen
