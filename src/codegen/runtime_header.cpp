// Generates the runtime support header embedded in emitted C.
//
// Contains the complex value type, portable complex helpers, and a portable
// fallback definition for every custom instruction the active ISA
// description advertises (spelled with the description's intrinsic names).
// An ASIP C compiler recognizes the intrinsic names; any other C compiler
// just inlines the fallbacks — generated code runs everywhere.
#include <set>
#include <sstream>

#include "codegen/cemit.hpp"

namespace mat2c::codegen {

namespace {

void emitVectorTypes(std::ostringstream& os, int wF, int wC) {
  os << "typedef struct { double v[" << wF << "]; } mat2c_v" << wF << "f64;\n";
  if (wC > 1) {
    os << "typedef struct { mat2c_c64 v[" << wC << "]; } mat2c_v" << wC << "c64;\n";
    if (wC != wF) {
      os << "typedef struct { double v[" << wC << "]; } mat2c_v" << wC << "f64;\n";
    }
  }
}

std::string vf(int w) { return "mat2c_v" + std::to_string(w) + "f64"; }
std::string vc(int w) { return "mat2c_v" + std::to_string(w) + "c64"; }

/// Intrinsic name for op at a given f64 width: the ISA's full-width name, or
/// a _w<N> variant for the narrower f64 width used inside complex loops.
std::string opName(const isa::IsaDescription& isa, isa::Op op, int w, int fullW) {
  std::string n = isa.intrinsicName(op);
  if (w != fullW) n += "_w" + std::to_string(w);
  return n;
}

void emitF64VectorSet(std::ostringstream& os, const isa::IsaDescription& isa, int w) {
  const int fullW = isa.lanesF64();
  const std::string T = vf(w);
  auto name = [&](isa::Op op) { return opName(isa, op, w, fullW); };
  auto lanewise = [&](isa::Op op, const char* expr) {
    os << "static inline " << T << " " << name(op) << "(" << T << " a, " << T << " b) {\n"
       << "  " << T << " r; int i;\n"
       << "  for (i = 0; i < " << w << "; ++i) r.v[i] = " << expr << ";\n"
       << "  return r;\n}\n";
  };
  os << "static inline " << T << " " << name(isa::Op::VLoadF)
     << "(const double* p) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) r.v[i] = p[i];\n  return r;\n}\n";
  os << "static inline void " << name(isa::Op::VStoreF) << "(double* p, " << T
     << " a) {\n  int i;\n  for (i = 0; i < " << w << "; ++i) p[i] = a.v[i];\n}\n";
  os << "static inline " << T << " " << name(isa::Op::VSplatF)
     << "(double s) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) r.v[i] = s;\n  return r;\n}\n";
  lanewise(isa::Op::VAddF, "a.v[i] + b.v[i]");
  lanewise(isa::Op::VSubF, "a.v[i] - b.v[i]");
  lanewise(isa::Op::VMulF, "a.v[i] * b.v[i]");
  lanewise(isa::Op::VDivF, "a.v[i] / b.v[i]");
  lanewise(isa::Op::VMinF, "a.v[i] < b.v[i] ? a.v[i] : b.v[i]");
  lanewise(isa::Op::VMaxF, "a.v[i] > b.v[i] ? a.v[i] : b.v[i]");
  os << "static inline " << T << " " << name(isa::Op::VNegF) << "(" << T
     << " a) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) r.v[i] = -a.v[i];\n  return r;\n}\n";
  os << "static inline " << T << " " << name(isa::Op::VAbsF) << "(" << T
     << " a) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) r.v[i] = fabs(a.v[i]);\n  return r;\n}\n";
  if (isa.hasFma()) {
    os << "static inline " << T << " " << name(isa::Op::VFmaF) << "(" << T << " a, " << T
       << " b, " << T << " c) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
       << "; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];\n  return r;\n}\n";
  }
  os << "static inline double " << name(isa::Op::VReduceAddF) << "(" << T
     << " a) {\n  double s = 0.0; int i;\n  for (i = 0; i < " << w
     << "; ++i) s += a.v[i];\n  return s;\n}\n";
  os << "static inline double " << name(isa::Op::VReduceMinF) << "(" << T
     << " a) {\n  double s = a.v[0]; int i;\n  for (i = 1; i < " << w
     << "; ++i) if (a.v[i] < s) s = a.v[i];\n  return s;\n}\n";
  os << "static inline double " << name(isa::Op::VReduceMaxF) << "(" << T
     << " a) {\n  double s = a.v[0]; int i;\n  for (i = 1; i < " << w
     << "; ++i) if (a.v[i] > s) s = a.v[i];\n  return s;\n}\n";
}

void emitC64VectorSet(std::ostringstream& os, const isa::IsaDescription& isa) {
  const int w = isa.lanesC64();
  if (w <= 1) return;
  const std::string T = vc(w);
  const std::string TF = vf(w);
  auto name = [&](isa::Op op) { return isa.intrinsicName(op); };
  os << "static inline " << T << " " << name(isa::Op::VLoadC)
     << "(const mat2c_c64* p) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) r.v[i] = p[i];\n  return r;\n}\n";
  os << "static inline void " << name(isa::Op::VStoreC) << "(mat2c_c64* p, " << T
     << " a) {\n  int i;\n  for (i = 0; i < " << w << "; ++i) p[i] = a.v[i];\n}\n";
  os << "static inline " << T << " " << name(isa::Op::VSplatC)
     << "(mat2c_c64 s) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) r.v[i] = s;\n  return r;\n}\n";
  auto lanewise = [&](isa::Op op, const char* fn) {
    os << "static inline " << T << " " << name(op) << "(" << T << " a, " << T << " b) {\n"
       << "  " << T << " r; int i;\n  for (i = 0; i < " << w << "; ++i) r.v[i] = " << fn
       << "(a.v[i], b.v[i]);\n  return r;\n}\n";
  };
  lanewise(isa::Op::VAddC, "mat2c_cadd");
  lanewise(isa::Op::VSubC, "mat2c_csub");
  os << "static inline " << T << " " << name(isa::Op::VNegC) << "(" << T << " a) {\n  " << T
     << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) r.v[i] = mat2c_cneg(a.v[i]);\n  return r;\n}\n";
  if (isa.hasCmul()) {
    lanewise(isa::Op::VMulC, "mat2c_cmul");
    os << "static inline " << T << " " << name(isa::Op::VConjC) << "(" << T
       << " a) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
       << "; ++i) r.v[i] = mat2c_conj(a.v[i]);\n  return r;\n}\n";
  }
  if (isa.hasCmac()) {
    os << "static inline " << T << " " << name(isa::Op::VFmaC) << "(" << T << " a, " << T
       << " b, " << T << " c) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
       << "; ++i) r.v[i] = mat2c_cadd(mat2c_cmul(a.v[i], b.v[i]), c.v[i]);\n  return r;\n}\n";
  }
  os << "static inline mat2c_c64 " << name(isa::Op::VReduceAddC) << "(" << T
     << " a) {\n  mat2c_c64 s = a.v[0]; int i;\n  for (i = 1; i < " << w
     << "; ++i) s = mat2c_cadd(s, a.v[i]);\n  return s;\n}\n";
  // Lane-wise f64 -> c64 widen and complex construction at this width.
  os << "static inline " << T << " mat2c_v" << w << "toc(" << TF << " a) {\n  " << T
     << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) { r.v[i].re = a.v[i]; r.v[i].im = 0.0; }\n  return r;\n}\n";
  os << "static inline " << T << " mat2c_v" << w << "make(" << TF << " a, " << TF
     << " b) {\n  " << T << " r; int i;\n  for (i = 0; i < " << w
     << "; ++i) { r.v[i].re = a.v[i]; r.v[i].im = b.v[i]; }\n  return r;\n}\n";
}

}  // namespace

std::string runtimeHeader(const isa::IsaDescription& isa) {
  std::ostringstream os;
  os << "/* mat2c runtime support — target: " << isa.name() << "\n"
     << " * f64 SIMD lanes: " << isa.lanesF64() << ", c64 SIMD lanes: " << isa.lanesC64()
     << ", fma: " << (isa.hasFma() ? "yes" : "no")
     << ", cmul: " << (isa.hasCmul() ? "yes" : "no")
     << ", cmac: " << (isa.hasCmac() ? "yes" : "no") << "\n"
     << " * Intrinsics below are portable fallbacks; an ASIP toolchain maps the\n"
     << " * same names onto custom instructions. */\n"
     << "#include <math.h>\n"
     << "#include <stdint.h>\n"
     << "#include <stdio.h>\n"
     << "#include <stdlib.h>\n"
     << "#include <string.h>\n\n"
     << "typedef struct { double re, im; } mat2c_c64;\n";
  emitVectorTypes(os, isa.lanesF64(), isa.lanesC64());
  os << "\n/* -- complex scalar helpers (portable) -- */\n"
     << "static inline mat2c_c64 mat2c_make(double re, double im) {\n"
     << "  mat2c_c64 r; r.re = re; r.im = im; return r;\n}\n"
     << "static inline mat2c_c64 mat2c_cadd(mat2c_c64 a, mat2c_c64 b) {\n"
     << "  return mat2c_make(a.re + b.re, a.im + b.im);\n}\n"
     << "static inline mat2c_c64 mat2c_csub(mat2c_c64 a, mat2c_c64 b) {\n"
     << "  return mat2c_make(a.re - b.re, a.im - b.im);\n}\n"
     << "static inline mat2c_c64 mat2c_cmul(mat2c_c64 a, mat2c_c64 b) {\n"
     << "  return mat2c_make(a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re);\n}\n"
     << "static inline mat2c_c64 mat2c_cdiv(mat2c_c64 a, mat2c_c64 b) {\n"
     << "  double d = b.re * b.re + b.im * b.im;\n"
     << "  return mat2c_make((a.re * b.re + a.im * b.im) / d,\n"
     << "                    (a.im * b.re - a.re * b.im) / d);\n}\n"
     << "static inline mat2c_c64 mat2c_cneg(mat2c_c64 a) { return mat2c_make(-a.re, -a.im); }\n"
     << "static inline mat2c_c64 mat2c_conj(mat2c_c64 a) { return mat2c_make(a.re, -a.im); }\n"
     << "static inline double mat2c_cabs(mat2c_c64 a) { return hypot(a.re, a.im); }\n"
     << "static inline double mat2c_carg(mat2c_c64 a) { return atan2(a.im, a.re); }\n"
     << "static inline mat2c_c64 mat2c_cexp(mat2c_c64 a) {\n"
     << "  double m = exp(a.re);\n"
     << "  return mat2c_make(m * cos(a.im), m * sin(a.im));\n}\n"
     << "static inline mat2c_c64 mat2c_clog(mat2c_c64 a) {\n"
     << "  return mat2c_make(log(mat2c_cabs(a)), mat2c_carg(a));\n}\n"
     << "static inline mat2c_c64 mat2c_csqrt_(mat2c_c64 a) {\n"
     << "  double m = sqrt(mat2c_cabs(a));\n"
     << "  double ph = 0.5 * mat2c_carg(a);\n"
     << "  return mat2c_make(m * cos(ph), m * sin(ph));\n}\n"
     << "static inline mat2c_c64 mat2c_cpow(mat2c_c64 a, mat2c_c64 b) {\n"
     << "  return mat2c_cexp(mat2c_cmul(b, mat2c_clog(a)));\n}\n"
     << "static inline int mat2c_ceq(mat2c_c64 a, mat2c_c64 b) {\n"
     << "  return a.re == b.re && a.im == b.im;\n}\n"
     << "static inline double mat2c_min(double a, double b) { return b < a ? b : a; }\n"
     << "static inline double mat2c_max(double a, double b) { return a < b ? b : a; }\n"
     << "static inline double mat2c_sign(double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); }\n"
     << "static inline double mat2c_mod(double x, double m) {\n"
     << "  return m == 0.0 ? x : x - floor(x / m) * m;\n}\n"
     << "static inline double mat2c_rem(double x, double m) {\n"
     << "  return m == 0.0 ? x : fmod(x, m);\n}\n"
     << "static inline void mat2c_check(int64_t idx, int64_t n, const char* what) {\n"
     << "  if (idx < 0 || idx >= n) {\n"
     << "    fprintf(stderr, \"mat2c: index %lld out of bounds for %s (%lld elements)\\n\",\n"
     << "            (long long)idx, what, (long long)n);\n"
     << "    abort();\n  }\n}\n";

  if (isa.hasFma()) {
    os << "\n/* -- scalar custom instructions -- */\n"
       << "static inline double " << isa.intrinsicName(isa::Op::FmaF)
       << "(double a, double b, double c) { return a * b + c; }\n";
  }
  if (isa.hasCmul()) {
    os << "static inline mat2c_c64 " << isa.intrinsicName(isa::Op::MulC)
       << "(mat2c_c64 a, mat2c_c64 b) { return mat2c_cmul(a, b); }\n";
  }
  if (isa.hasCmac()) {
    os << "static inline mat2c_c64 " << isa.intrinsicName(isa::Op::FmaC)
       << "(mat2c_c64 a, mat2c_c64 b, mat2c_c64 c) {\n"
       << "  return mat2c_cadd(mat2c_cmul(a, b), c);\n}\n";
  }

  if (isa.lanesF64() > 1) {
    os << "\n/* -- " << isa.lanesF64() << "-lane f64 SIMD intrinsics -- */\n";
    emitF64VectorSet(os, isa, isa.lanesF64());
    if (isa.lanesC64() > 1 && isa.lanesC64() != isa.lanesF64()) {
      os << "\n/* -- " << isa.lanesC64() << "-lane f64 ops (complex-loop width) -- */\n";
      emitF64VectorSet(os, isa, isa.lanesC64());
    }
  }
  if (isa.lanesC64() > 1) {
    os << "\n/* -- " << isa.lanesC64() << "-lane c64 SIMD intrinsics -- */\n";
    emitC64VectorSet(os, isa);
  }
  os << "\n";
  return os.str();
}

}  // namespace mat2c::codegen
