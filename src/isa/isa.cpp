#include "isa/isa.hpp"

#include <cmath>
#include <sstream>

#include "support/string_utils.hpp"

namespace mat2c::isa {

namespace {

struct OpMeta {
  Op op;
  const char* mnemonic;
  double defaultCost;
};

// Default cycle costs are data-sheet-style figures for a mid-range DSP ASIP:
// single-cycle ALU/MAC, pipelined wide memory port, microcoded
// transcendentals. They are deliberately round numbers — the experiments
// measure *relative* speedups, which depend on the ratios, not the absolute
// scale.
constexpr OpMeta kOps[] = {
    {Op::AddF, "add.f64", 1},       {Op::SubF, "sub.f64", 1},
    {Op::MulF, "mul.f64", 1},       {Op::DivF, "div.f64", 8},
    {Op::NegF, "neg.f64", 1},       {Op::MinF, "min.f64", 1},
    {Op::MaxF, "max.f64", 1},       {Op::AbsF, "abs.f64", 1},
    {Op::FmaF, "fma.f64", 1},       {Op::CmpF, "cmp.f64", 1},
    {Op::SqrtF, "sqrt.f64", 12},    {Op::ExpF, "exp.f64", 20},
    {Op::LogF, "log.f64", 20},      {Op::SinF, "sin.f64", 18},
    {Op::CosF, "cos.f64", 18},      {Op::TanF, "tan.f64", 22},
    {Op::AtanF, "atan.f64", 22},    {Op::Atan2F, "atan2.f64", 24},
    {Op::PowF, "pow.f64", 30},      {Op::FloorF, "floor.f64", 2},
    {Op::RoundF, "round.f64", 2},   {Op::ModF, "mod.f64", 12},

    {Op::AddC, "add.c64", 2},       {Op::SubC, "sub.c64", 2},
    {Op::MulC, "cmul.c64", 1},      {Op::DivC, "cdiv.c64", 20},
    {Op::NegC, "neg.c64", 2},       {Op::ConjC, "conj.c64", 1},
    {Op::FmaC, "cmac.c64", 1},

    {Op::AddI, "add.i64", 1},       {Op::MulI, "mul.i64", 1},
    {Op::CmpI, "cmp.i64", 1},       {Op::Branch, "branch", 1},
    {Op::LoopOverhead, "loop", 2},

    {Op::LoadF, "ld.f64", 2},       {Op::StoreF, "st.f64", 2},
    {Op::LoadC, "ld.c64", 2},       {Op::StoreC, "st.c64", 2},
    {Op::VLoadF, "vld.f64", 2},     {Op::VStoreF, "vst.f64", 2},
    {Op::VLoadC, "vld.c64", 2},     {Op::VStoreC, "vst.c64", 2},

    {Op::VAddF, "vadd.f64", 1},     {Op::VSubF, "vsub.f64", 1},
    {Op::VMulF, "vmul.f64", 1},     {Op::VDivF, "vdiv.f64", 10},
    {Op::VMinF, "vmin.f64", 1},     {Op::VMaxF, "vmax.f64", 1},
    {Op::VAbsF, "vabs.f64", 1},     {Op::VNegF, "vneg.f64", 1},
    {Op::VFmaF, "vfma.f64", 1},     {Op::VSplatF, "vsplat.f64", 1},
    {Op::VReduceAddF, "vredadd.f64", 4},
    {Op::VReduceMinF, "vredmin.f64", 4},
    {Op::VReduceMaxF, "vredmax.f64", 4},

    {Op::VAddC, "vadd.c64", 1},     {Op::VSubC, "vsub.c64", 1},
    {Op::VMulC, "vcmul.c64", 1},    {Op::VNegC, "vneg.c64", 1},
    {Op::VConjC, "vconj.c64", 1},   {Op::VFmaC, "vcmac.c64", 1},
    {Op::VSplatC, "vsplat.c64", 1}, {Op::VReduceAddC, "vredadd.c64", 3},

    {Op::BoundsCheck, "boundscheck", 2},
    {Op::AllocTemp, "alloctemp", 30},
};

const OpMeta& meta(Op op) {
  for (const auto& m : kOps) {
    if (m.op == op) return m;
  }
  throw std::logic_error("unknown isa::Op");
}

}  // namespace

const char* mnemonic(Op op) { return meta(op).mnemonic; }

std::optional<Op> opFromMnemonic(const std::string& name) {
  for (const auto& m : kOps) {
    if (name == m.mnemonic) return m.op;
  }
  return std::nullopt;
}

bool isVectorOp(Op op) {
  switch (op) {
    case Op::VLoadF: case Op::VStoreF: case Op::VLoadC: case Op::VStoreC:
    case Op::VAddF: case Op::VSubF: case Op::VMulF: case Op::VDivF:
    case Op::VMinF: case Op::VMaxF: case Op::VAbsF: case Op::VNegF:
    case Op::VFmaF: case Op::VSplatF:
    case Op::VReduceAddF: case Op::VReduceMinF: case Op::VReduceMaxF:
    case Op::VAddC: case Op::VSubC: case Op::VMulC: case Op::VNegC:
    case Op::VConjC: case Op::VFmaC: case Op::VSplatC: case Op::VReduceAddC:
      return true;
    default:
      return false;
  }
}

bool isComplexOp(Op op) {
  switch (op) {
    case Op::AddC: case Op::SubC: case Op::MulC: case Op::DivC:
    case Op::NegC: case Op::ConjC: case Op::FmaC:
    case Op::LoadC: case Op::StoreC: case Op::VLoadC: case Op::VStoreC:
    case Op::VAddC: case Op::VSubC: case Op::VMulC: case Op::VNegC:
    case Op::VConjC: case Op::VFmaC: case Op::VSplatC: case Op::VReduceAddC:
      return true;
    default:
      return false;
  }
}

void IsaDescription::setLanes(int f64Lanes, int c64Lanes) {
  lanesF64_ = f64Lanes < 1 ? 1 : f64Lanes;
  lanesC64_ = c64Lanes < 1 ? 1 : c64Lanes;
}

void IsaDescription::setFeature(const std::string& feature, bool on, DiagnosticEngine* diags) {
  if (feature == "fma") {
    fma_ = on;
  } else if (feature == "cmul") {
    cmul_ = on;
  } else if (feature == "cmac") {
    cmac_ = on;
  } else if (feature == "zol") {
    zol_ = on;
  } else if (feature == "agu") {
    agu_ = on;
  } else if (diags) {
    diags->error({}, "unknown ISA feature '" + feature + "'");
  }
}

bool IsaDescription::supports(Op op) const {
  switch (op) {
    case Op::FmaF: return fma_;
    case Op::MulC: return cmul_;
    case Op::FmaC: return cmac_;
    case Op::VFmaF: return lanesF64_ > 1 && fma_;
    case Op::VMulC: return lanesC64_ > 1 && cmul_;
    case Op::VFmaC: return lanesC64_ > 1 && cmac_;
    case Op::VConjC: return lanesC64_ > 1 && cmul_;  // part of the complex unit
    default:
      if (isVectorOp(op)) {
        return isComplexOp(op) ? lanesC64_ > 1 : lanesF64_ > 1;
      }
      return true;  // baseline scalar/integer/memory ops always exist
  }
}

double IsaDescription::rawCost(Op op) const {
  auto it = costOverride_.find(op);
  double base = it != costOverride_.end() ? it->second : meta(op).defaultCost;
  if (it == costOverride_.end()) {
    if (zol_ && op == Op::LoopOverhead) return 0.0;
    if (agu_ && (op == Op::AddI || op == Op::MulI || op == Op::CmpI)) return 0.0;
  }
  // Wide vectors beyond the memory port width pay extra issues on memory ops.
  if (op == Op::VLoadF || op == Op::VStoreF) {
    int issues = (lanesF64_ + memLanes_ - 1) / memLanes_;
    return base * issues;
  }
  if (op == Op::VLoadC || op == Op::VStoreC) {
    int issues = (2 * lanesC64_ + memLanes_ - 1) / memLanes_;  // c64 = 2 doubles
    return base * issues;
  }
  // Reduction depth scales with lane count.
  if (op == Op::VReduceAddF || op == Op::VReduceMinF || op == Op::VReduceMaxF) {
    return std::max(1.0, std::log2(static_cast<double>(lanesF64_)) + 1.0);
  }
  if (op == Op::VReduceAddC) {
    return std::max(1.0, std::log2(static_cast<double>(lanesC64_)) + 1.0);
  }
  return base;
}

double IsaDescription::cost(Op op) const {
  if (supports(op)) return rawCost(op);
  // Decompositions for missing custom instructions.
  switch (op) {
    case Op::FmaF: return cost(Op::MulF) + cost(Op::AddF);
    case Op::MulC: return 4 * cost(Op::MulF) + 2 * cost(Op::AddF);
    case Op::FmaC: return cost(Op::MulC) + cost(Op::AddC);
    case Op::ConjC: return cost(Op::NegF);
    case Op::VFmaF:
      if (lanesF64_ > 1) return cost(Op::VMulF) + cost(Op::VAddF);
      break;
    case Op::VMulC:
      // Without a complex SIMD unit the vectorizer never emits this.
      break;
    default:
      break;
  }
  throw std::logic_error(std::string("cost requested for unsupported op ") + mnemonic(op));
}

std::string IsaDescription::intrinsicName(Op op) const {
  auto it = intrinsicOverride_.find(op);
  if (it != intrinsicOverride_.end()) return it->second;
  std::string n = name_ + "_" + mnemonic(op);
  for (char& c : n) {
    if (c == '.') c = '_';
  }
  return n;
}

bool IsaDescription::usesIntrinsic(Op op) const {
  if (!supports(op)) return false;
  if (isVectorOp(op)) return true;
  switch (op) {
    case Op::FmaF:
    case Op::MulC:
    case Op::FmaC:
      return true;  // scalar custom instructions
    default:
      return false;  // plain C operators / libm
  }
}

IsaDescription IsaDescription::preset(const std::string& name) {
  IsaDescription d;
  auto dspx = [&](int wF, int wC) {
    d.setName(name);
    d.setLanes(wF, wC);
    d.setMemLanes(8);
    d.setFeature("fma", true);
    d.setFeature("cmul", true);
    d.setFeature("cmac", true);
    d.setFeature("zol", true);
    d.setFeature("agu", true);
  };
  if (name == "scalar") {
    d.setName("scalar");
    return d;
  }
  if (name == "dspx") {
    dspx(8, 4);
    return d;
  }
  if (name == "dspx_w2") {
    dspx(2, 1);
    return d;
  }
  if (name == "dspx_w4") {
    dspx(4, 2);
    return d;
  }
  if (name == "dspx_w16") {
    dspx(16, 8);
    return d;
  }
  if (name == "dspx_nocomplex") {
    // SIMD registers still hold interleaved complex data (vadd/vsub work as
    // plain f64 lane ops); only the complex-arithmetic unit is gone.
    dspx(8, 4);
    d.setFeature("cmul", false);
    d.setFeature("cmac", false);
    return d;
  }
  if (name == "dspx_novec") {
    dspx(1, 1);
    return d;
  }
  throw std::invalid_argument("unknown ISA preset '" + name + "'");
}

std::vector<std::string> IsaDescription::presetNames() {
  return {"scalar", "dspx", "dspx_w2", "dspx_w4", "dspx_w16", "dspx_nocomplex", "dspx_novec"};
}

IsaDescription IsaDescription::parse(const std::string& text, DiagnosticEngine& diags) {
  IsaDescription d;
  std::uint32_t lineNo = 0;
  // A second cost/intrinsic entry for the same op would silently win over the
  // first (map overwrite), which hides typos in hand-edited descriptions —
  // diagnose it naming both definitions instead.
  std::map<Op, std::uint32_t> costLine;
  std::map<Op, std::uint32_t> intrinsicLine;
  for (const std::string& rawLine : split(text, '\n')) {
    ++lineNo;
    std::string_view line = trim(rawLine);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is{std::string(line)};
    std::string directive;
    is >> directive;
    SourceLoc loc{lineNo, 1};
    if (directive == "name") {
      std::string n;
      is >> n;
      d.setName(n);
    } else if (directive == "simd") {
      std::string ty;
      int lanes = 1;
      is >> ty >> lanes;
      if (ty == "f64") {
        d.lanesF64_ = lanes < 1 ? 1 : lanes;
      } else if (ty == "c64") {
        d.lanesC64_ = lanes < 1 ? 1 : lanes;
      } else {
        diags.error(loc, "unknown simd element type '" + ty + "'");
      }
    } else if (directive == "memlanes") {
      int lanes = 8;
      is >> lanes;
      d.setMemLanes(lanes < 1 ? 1 : lanes);
    } else if (directive == "feature") {
      std::string f;
      is >> f;
      d.setFeature(f, true, &diags);
    } else if (directive == "cost") {
      std::string mn;
      double cycles = 0;
      is >> mn >> cycles;
      auto op = opFromMnemonic(mn);
      if (!op) {
        diags.error(loc, "unknown op mnemonic '" + mn + "'");
      } else if (auto [it, inserted] = costLine.emplace(*op, lineNo); !inserted) {
        diags.error(loc, "duplicate cost for '" + mn + "' (first defined at line " +
                             std::to_string(it->second) + ")");
      } else {
        d.setCost(*op, cycles);
      }
    } else if (directive == "intrinsic") {
      std::string mn;
      std::string cName;
      is >> mn >> cName;
      auto op = opFromMnemonic(mn);
      if (!op) {
        diags.error(loc, "unknown op mnemonic '" + mn + "'");
      } else if (!isIdentifier(cName)) {
        diags.error(loc, "intrinsic name '" + cName + "' is not a valid C identifier");
      } else if (auto [it, inserted] = intrinsicLine.emplace(*op, lineNo); !inserted) {
        diags.error(loc, "duplicate intrinsic for '" + mn + "' (first defined at line " +
                             std::to_string(it->second) + ")");
      } else {
        d.setIntrinsicName(*op, cName);
      }
    } else {
      diags.error(loc, "unknown ISA directive '" + directive + "'");
    }
  }
  return d;
}

std::string IsaDescription::serialize() const {
  std::ostringstream os;
  os << "name " << name_ << "\n";
  os << "simd f64 " << lanesF64_ << "\n";
  os << "simd c64 " << lanesC64_ << "\n";
  os << "memlanes " << memLanes_ << "\n";
  if (fma_) os << "feature fma\n";
  if (cmul_) os << "feature cmul\n";
  if (cmac_) os << "feature cmac\n";
  if (zol_) os << "feature zol\n";
  if (agu_) os << "feature agu\n";
  for (const auto& [op, cycles] : costOverride_) {
    os << "cost " << mnemonic(op) << " " << cycles << "\n";
  }
  for (const auto& [op, cName] : intrinsicOverride_) {
    os << "intrinsic " << mnemonic(op) << " " << cName << "\n";
  }
  return os.str();
}

std::uint64_t IsaDescription::fingerprint() const { return fnv1a64(serialize()); }

}  // namespace mat2c::isa
