// Parameterized ASIP instruction-set description.
//
// This is the paper's retargeting mechanism: the compiler never hard-codes a
// processor. An IsaDescription lists which custom instructions exist (SIMD
// lanes per element type, complex-arithmetic units, fused MAC), what each
// operation costs in cycles, and how its intrinsic is spelled in the emitted
// C. Descriptions come from presets (the evaluated `dspx` ASIP, a plain
// `scalar` target) or from a textual description file, so any processor can
// be targeted by writing a description — no compiler changes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace mat2c::isa {

/// Machine-level operations the compiler can emit and the VM can cost.
enum class Op {
  // f64 scalar arithmetic
  AddF, SubF, MulF, DivF, NegF, MinF, MaxF, AbsF, FmaF, CmpF,
  SqrtF, ExpF, LogF, SinF, CosF, TanF, AtanF, Atan2F, PowF, FloorF, RoundF, ModF,
  // c64 scalar arithmetic (the paper's "instructions for complex arithmetic")
  AddC, SubC, MulC, DivC, NegC, ConjC, FmaC,
  // integer / control
  AddI, MulI, CmpI, Branch, LoopOverhead,
  // scalar memory
  LoadF, StoreF, LoadC, StoreC,
  // vector memory
  VLoadF, VStoreF, VLoadC, VStoreC,
  // f64 vector arithmetic
  VAddF, VSubF, VMulF, VDivF, VMinF, VMaxF, VAbsF, VNegF, VFmaF, VSplatF,
  VReduceAddF, VReduceMinF, VReduceMaxF,
  // c64 vector arithmetic
  VAddC, VSubC, VMulC, VNegC, VConjC, VFmaC, VSplatC, VReduceAddC,
  // baseline-code runtime overheads
  BoundsCheck, AllocTemp,
};

/// Mnemonic used in description files and dumps, e.g. "vfma.f64".
const char* mnemonic(Op op);
std::optional<Op> opFromMnemonic(const std::string& name);
bool isVectorOp(Op op);
bool isComplexOp(Op op);

class IsaDescription {
 public:
  /// Built-in targets:
  ///  * "dspx"        — the evaluated ASIP: 8-lane f64 SIMD, 4-lane c64 SIMD,
  ///                    fused MAC, complex multiply and complex MAC units.
  ///  * "dspx_w2/4/16" — dspx with a different SIMD width (ablation A).
  ///  * "dspx_nocomplex" — dspx without the complex-arithmetic unit (ablation B).
  ///  * "scalar"      — plain CPU: no SIMD, no custom instructions.
  static IsaDescription preset(const std::string& name);
  static std::vector<std::string> presetNames();

  /// Parses the textual description format:
  ///   name mydsp
  ///   simd f64 8
  ///   simd c64 4
  ///   memlanes 8
  ///   feature fma | cmul | cmac
  ///   cost <mnemonic> <cycles>
  ///   intrinsic <mnemonic> <c_name>
  /// Unknown directives are diagnosed. Starts from scalar defaults.
  static IsaDescription parse(const std::string& text, DiagnosticEngine& diags);

  /// Round-trippable textual form of this description. Canonical: two
  /// descriptions with identical observable state serialize identically
  /// (override maps are ordered), so this doubles as the fingerprint input.
  std::string serialize() const;

  /// Stable 64-bit content hash of serialize(). Two descriptions with equal
  /// fingerprints behave identically for compilation, costing, and emission;
  /// the compile cache keys on it (service::CacheKey).
  std::uint64_t fingerprint() const;

  const std::string& name() const { return name_; }

  /// SIMD lanes for each element type (1 = no SIMD).
  int lanesF64() const { return lanesF64_; }
  int lanesC64() const { return lanesC64_; }
  bool hasFma() const { return fma_; }
  bool hasCmul() const { return cmul_; }
  bool hasCmac() const { return cmac_; }
  /// Zero-overhead hardware loops (standard on DSPs/ASIPs): loop
  /// increment+branch cost nothing.
  bool hasZol() const { return zol_; }
  /// Dedicated address-generation units: index arithmetic runs in parallel
  /// with the datapath and costs no issue slots.
  bool hasAgu() const { return agu_; }
  /// f64 elements the memory port moves per cycle; wider vectors pay more.
  int memLanes() const { return memLanes_; }

  /// Whether the target has a (custom) instruction for `op`. Baseline scalar
  /// f64/int ops are always available; vector ops require lanes > 1; FmaF
  /// requires the fma feature; MulC/FmaC and their vector forms require the
  /// complex unit.
  bool supports(Op op) const;

  /// Cycle cost of one issue of `op` *when supported*.
  double rawCost(Op op) const;

  /// Cycle cost including decomposition: unsupported complex/fused ops are
  /// charged as their expansion over supported ops (e.g. MulC without a cmul
  /// unit = 4 MulF + 2 AddF). Unsupported vector ops have no expansion and
  /// must not be emitted; asking for their cost throws.
  double cost(Op op) const;

  /// C spelling of the intrinsic for a supported custom op, e.g.
  /// "dspx_vfma_f64". Scalar f64/int ops map to plain C operators and have no
  /// intrinsic name.
  std::string intrinsicName(Op op) const;
  /// True when emitted C should use an intrinsic call for this op.
  bool usesIntrinsic(Op op) const;

  // -- mutation (used by presets, parser, and ablation benches) -------------
  void setName(std::string n) { name_ = std::move(n); }
  void setLanes(int f64Lanes, int c64Lanes);
  void setMemLanes(int lanes) { memLanes_ = lanes; }
  void setFeature(const std::string& feature, bool on, DiagnosticEngine* diags = nullptr);
  void setCost(Op op, double cycles) { costOverride_[op] = cycles; }
  void setIntrinsicName(Op op, std::string cName) { intrinsicOverride_[op] = std::move(cName); }

 private:
  std::string name_ = "scalar";
  int lanesF64_ = 1;
  int lanesC64_ = 1;
  int memLanes_ = 8;
  bool fma_ = false;
  bool cmul_ = false;
  bool cmac_ = false;
  bool zol_ = false;
  bool agu_ = false;
  std::map<Op, double> costOverride_;
  std::map<Op, std::string> intrinsicOverride_;
};

}  // namespace mat2c::isa
