file(REMOVE_RECURSE
  "CMakeFiles/mat2c_vm.dir/vm/vm.cpp.o"
  "CMakeFiles/mat2c_vm.dir/vm/vm.cpp.o.d"
  "libmat2c_vm.a"
  "libmat2c_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
