# Empty dependencies file for mat2c_vm.
# This may be replaced when dependencies are built.
