file(REMOVE_RECURSE
  "libmat2c_vm.a"
)
