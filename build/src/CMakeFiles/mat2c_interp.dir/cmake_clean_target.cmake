file(REMOVE_RECURSE
  "libmat2c_interp.a"
)
