file(REMOVE_RECURSE
  "CMakeFiles/mat2c_interp.dir/interp/builtins_runtime.cpp.o"
  "CMakeFiles/mat2c_interp.dir/interp/builtins_runtime.cpp.o.d"
  "CMakeFiles/mat2c_interp.dir/interp/interpreter.cpp.o"
  "CMakeFiles/mat2c_interp.dir/interp/interpreter.cpp.o.d"
  "CMakeFiles/mat2c_interp.dir/interp/value.cpp.o"
  "CMakeFiles/mat2c_interp.dir/interp/value.cpp.o.d"
  "libmat2c_interp.a"
  "libmat2c_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
