# Empty dependencies file for mat2c_interp.
# This may be replaced when dependencies are built.
