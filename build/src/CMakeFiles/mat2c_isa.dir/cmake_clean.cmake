file(REMOVE_RECURSE
  "CMakeFiles/mat2c_isa.dir/isa/isa.cpp.o"
  "CMakeFiles/mat2c_isa.dir/isa/isa.cpp.o.d"
  "libmat2c_isa.a"
  "libmat2c_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
