# Empty dependencies file for mat2c_isa.
# This may be replaced when dependencies are built.
