file(REMOVE_RECURSE
  "libmat2c_isa.a"
)
