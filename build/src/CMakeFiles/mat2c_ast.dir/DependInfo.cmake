
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast.cpp" "src/CMakeFiles/mat2c_ast.dir/ast/ast.cpp.o" "gcc" "src/CMakeFiles/mat2c_ast.dir/ast/ast.cpp.o.d"
  "/root/repo/src/ast/printer.cpp" "src/CMakeFiles/mat2c_ast.dir/ast/printer.cpp.o" "gcc" "src/CMakeFiles/mat2c_ast.dir/ast/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mat2c_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
