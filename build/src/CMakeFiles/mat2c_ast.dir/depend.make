# Empty dependencies file for mat2c_ast.
# This may be replaced when dependencies are built.
