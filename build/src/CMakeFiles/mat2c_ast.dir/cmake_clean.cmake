file(REMOVE_RECURSE
  "CMakeFiles/mat2c_ast.dir/ast/ast.cpp.o"
  "CMakeFiles/mat2c_ast.dir/ast/ast.cpp.o.d"
  "CMakeFiles/mat2c_ast.dir/ast/printer.cpp.o"
  "CMakeFiles/mat2c_ast.dir/ast/printer.cpp.o.d"
  "libmat2c_ast.a"
  "libmat2c_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
