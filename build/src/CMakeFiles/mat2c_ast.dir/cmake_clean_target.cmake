file(REMOVE_RECURSE
  "libmat2c_ast.a"
)
