
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lower/lowering.cpp" "src/CMakeFiles/mat2c_lower.dir/lower/lowering.cpp.o" "gcc" "src/CMakeFiles/mat2c_lower.dir/lower/lowering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mat2c_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
