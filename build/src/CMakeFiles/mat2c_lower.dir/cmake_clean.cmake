file(REMOVE_RECURSE
  "CMakeFiles/mat2c_lower.dir/lower/lowering.cpp.o"
  "CMakeFiles/mat2c_lower.dir/lower/lowering.cpp.o.d"
  "libmat2c_lower.a"
  "libmat2c_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
