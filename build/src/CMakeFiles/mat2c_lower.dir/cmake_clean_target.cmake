file(REMOVE_RECURSE
  "libmat2c_lower.a"
)
