# Empty dependencies file for mat2c_lower.
# This may be replaced when dependencies are built.
