# Empty compiler generated dependencies file for mat2c_support.
# This may be replaced when dependencies are built.
