file(REMOVE_RECURSE
  "CMakeFiles/mat2c_support.dir/support/diagnostics.cpp.o"
  "CMakeFiles/mat2c_support.dir/support/diagnostics.cpp.o.d"
  "CMakeFiles/mat2c_support.dir/support/string_utils.cpp.o"
  "CMakeFiles/mat2c_support.dir/support/string_utils.cpp.o.d"
  "libmat2c_support.a"
  "libmat2c_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
