file(REMOVE_RECURSE
  "libmat2c_support.a"
)
