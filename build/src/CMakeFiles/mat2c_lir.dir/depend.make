# Empty dependencies file for mat2c_lir.
# This may be replaced when dependencies are built.
