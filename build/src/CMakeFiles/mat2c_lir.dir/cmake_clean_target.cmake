file(REMOVE_RECURSE
  "libmat2c_lir.a"
)
