
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lir/lir.cpp" "src/CMakeFiles/mat2c_lir.dir/lir/lir.cpp.o" "gcc" "src/CMakeFiles/mat2c_lir.dir/lir/lir.cpp.o.d"
  "/root/repo/src/lir/printer.cpp" "src/CMakeFiles/mat2c_lir.dir/lir/printer.cpp.o" "gcc" "src/CMakeFiles/mat2c_lir.dir/lir/printer.cpp.o.d"
  "/root/repo/src/lir/verifier.cpp" "src/CMakeFiles/mat2c_lir.dir/lir/verifier.cpp.o" "gcc" "src/CMakeFiles/mat2c_lir.dir/lir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mat2c_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
