file(REMOVE_RECURSE
  "CMakeFiles/mat2c_lir.dir/lir/lir.cpp.o"
  "CMakeFiles/mat2c_lir.dir/lir/lir.cpp.o.d"
  "CMakeFiles/mat2c_lir.dir/lir/printer.cpp.o"
  "CMakeFiles/mat2c_lir.dir/lir/printer.cpp.o.d"
  "CMakeFiles/mat2c_lir.dir/lir/verifier.cpp.o"
  "CMakeFiles/mat2c_lir.dir/lir/verifier.cpp.o.d"
  "libmat2c_lir.a"
  "libmat2c_lir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_lir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
