# Empty compiler generated dependencies file for mat2c_opt.
# This may be replaced when dependencies are built.
