file(REMOVE_RECURSE
  "CMakeFiles/mat2c_opt.dir/opt/check_elim.cpp.o"
  "CMakeFiles/mat2c_opt.dir/opt/check_elim.cpp.o.d"
  "CMakeFiles/mat2c_opt.dir/opt/const_fold.cpp.o"
  "CMakeFiles/mat2c_opt.dir/opt/const_fold.cpp.o.d"
  "CMakeFiles/mat2c_opt.dir/opt/dce.cpp.o"
  "CMakeFiles/mat2c_opt.dir/opt/dce.cpp.o.d"
  "CMakeFiles/mat2c_opt.dir/opt/idiom.cpp.o"
  "CMakeFiles/mat2c_opt.dir/opt/idiom.cpp.o.d"
  "CMakeFiles/mat2c_opt.dir/opt/pass_manager.cpp.o"
  "CMakeFiles/mat2c_opt.dir/opt/pass_manager.cpp.o.d"
  "CMakeFiles/mat2c_opt.dir/opt/sink.cpp.o"
  "CMakeFiles/mat2c_opt.dir/opt/sink.cpp.o.d"
  "CMakeFiles/mat2c_opt.dir/opt/vectorizer.cpp.o"
  "CMakeFiles/mat2c_opt.dir/opt/vectorizer.cpp.o.d"
  "libmat2c_opt.a"
  "libmat2c_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
