
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/check_elim.cpp" "src/CMakeFiles/mat2c_opt.dir/opt/check_elim.cpp.o" "gcc" "src/CMakeFiles/mat2c_opt.dir/opt/check_elim.cpp.o.d"
  "/root/repo/src/opt/const_fold.cpp" "src/CMakeFiles/mat2c_opt.dir/opt/const_fold.cpp.o" "gcc" "src/CMakeFiles/mat2c_opt.dir/opt/const_fold.cpp.o.d"
  "/root/repo/src/opt/dce.cpp" "src/CMakeFiles/mat2c_opt.dir/opt/dce.cpp.o" "gcc" "src/CMakeFiles/mat2c_opt.dir/opt/dce.cpp.o.d"
  "/root/repo/src/opt/idiom.cpp" "src/CMakeFiles/mat2c_opt.dir/opt/idiom.cpp.o" "gcc" "src/CMakeFiles/mat2c_opt.dir/opt/idiom.cpp.o.d"
  "/root/repo/src/opt/pass_manager.cpp" "src/CMakeFiles/mat2c_opt.dir/opt/pass_manager.cpp.o" "gcc" "src/CMakeFiles/mat2c_opt.dir/opt/pass_manager.cpp.o.d"
  "/root/repo/src/opt/sink.cpp" "src/CMakeFiles/mat2c_opt.dir/opt/sink.cpp.o" "gcc" "src/CMakeFiles/mat2c_opt.dir/opt/sink.cpp.o.d"
  "/root/repo/src/opt/vectorizer.cpp" "src/CMakeFiles/mat2c_opt.dir/opt/vectorizer.cpp.o" "gcc" "src/CMakeFiles/mat2c_opt.dir/opt/vectorizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mat2c_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mat2c_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
