file(REMOVE_RECURSE
  "libmat2c_opt.a"
)
