# Empty compiler generated dependencies file for mat2c_codegen.
# This may be replaced when dependencies are built.
