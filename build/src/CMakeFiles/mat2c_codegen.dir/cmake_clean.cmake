file(REMOVE_RECURSE
  "CMakeFiles/mat2c_codegen.dir/codegen/cemit.cpp.o"
  "CMakeFiles/mat2c_codegen.dir/codegen/cemit.cpp.o.d"
  "CMakeFiles/mat2c_codegen.dir/codegen/runtime_header.cpp.o"
  "CMakeFiles/mat2c_codegen.dir/codegen/runtime_header.cpp.o.d"
  "libmat2c_codegen.a"
  "libmat2c_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
