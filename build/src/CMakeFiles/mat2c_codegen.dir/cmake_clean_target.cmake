file(REMOVE_RECURSE
  "libmat2c_codegen.a"
)
