# Empty compiler generated dependencies file for mat2c_parser.
# This may be replaced when dependencies are built.
