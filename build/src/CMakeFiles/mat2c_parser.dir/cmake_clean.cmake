file(REMOVE_RECURSE
  "CMakeFiles/mat2c_parser.dir/parser/parser.cpp.o"
  "CMakeFiles/mat2c_parser.dir/parser/parser.cpp.o.d"
  "libmat2c_parser.a"
  "libmat2c_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
