file(REMOVE_RECURSE
  "libmat2c_parser.a"
)
