file(REMOVE_RECURSE
  "CMakeFiles/mat2c_sema.dir/sema/builtins.cpp.o"
  "CMakeFiles/mat2c_sema.dir/sema/builtins.cpp.o.d"
  "CMakeFiles/mat2c_sema.dir/sema/sema.cpp.o"
  "CMakeFiles/mat2c_sema.dir/sema/sema.cpp.o.d"
  "CMakeFiles/mat2c_sema.dir/sema/types.cpp.o"
  "CMakeFiles/mat2c_sema.dir/sema/types.cpp.o.d"
  "libmat2c_sema.a"
  "libmat2c_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
