file(REMOVE_RECURSE
  "libmat2c_sema.a"
)
