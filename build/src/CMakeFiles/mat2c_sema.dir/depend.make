# Empty dependencies file for mat2c_sema.
# This may be replaced when dependencies are built.
