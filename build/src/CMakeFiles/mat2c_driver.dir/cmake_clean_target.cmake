file(REMOVE_RECURSE
  "libmat2c_driver.a"
)
