# Empty dependencies file for mat2c_driver.
# This may be replaced when dependencies are built.
