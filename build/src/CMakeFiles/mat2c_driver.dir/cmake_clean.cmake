file(REMOVE_RECURSE
  "CMakeFiles/mat2c_driver.dir/driver/compiler.cpp.o"
  "CMakeFiles/mat2c_driver.dir/driver/compiler.cpp.o.d"
  "CMakeFiles/mat2c_driver.dir/driver/kernels.cpp.o"
  "CMakeFiles/mat2c_driver.dir/driver/kernels.cpp.o.d"
  "CMakeFiles/mat2c_driver.dir/driver/report.cpp.o"
  "CMakeFiles/mat2c_driver.dir/driver/report.cpp.o.d"
  "libmat2c_driver.a"
  "libmat2c_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
