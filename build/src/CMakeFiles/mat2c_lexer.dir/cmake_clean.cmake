file(REMOVE_RECURSE
  "CMakeFiles/mat2c_lexer.dir/lexer/lexer.cpp.o"
  "CMakeFiles/mat2c_lexer.dir/lexer/lexer.cpp.o.d"
  "CMakeFiles/mat2c_lexer.dir/lexer/token.cpp.o"
  "CMakeFiles/mat2c_lexer.dir/lexer/token.cpp.o.d"
  "libmat2c_lexer.a"
  "libmat2c_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
