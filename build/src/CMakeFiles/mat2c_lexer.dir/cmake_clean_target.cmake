file(REMOVE_RECURSE
  "libmat2c_lexer.a"
)
