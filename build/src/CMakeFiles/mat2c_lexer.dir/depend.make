# Empty dependencies file for mat2c_lexer.
# This may be replaced when dependencies are built.
