# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_retarget_isa "/root/repo/build/examples/retarget_isa")
set_tests_properties(example_retarget_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fm_receiver "/root/repo/build/examples/fm_receiver")
set_tests_properties(example_fm_receiver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fir_workbench "/root/repo/build/examples/fir_workbench" "256" "16")
set_tests_properties(example_fir_workbench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
