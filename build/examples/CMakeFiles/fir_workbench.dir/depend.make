# Empty dependencies file for fir_workbench.
# This may be replaced when dependencies are built.
