file(REMOVE_RECURSE
  "CMakeFiles/fir_workbench.dir/fir_workbench.cpp.o"
  "CMakeFiles/fir_workbench.dir/fir_workbench.cpp.o.d"
  "fir_workbench"
  "fir_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
