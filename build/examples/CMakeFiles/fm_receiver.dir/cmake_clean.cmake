file(REMOVE_RECURSE
  "CMakeFiles/fm_receiver.dir/fm_receiver.cpp.o"
  "CMakeFiles/fm_receiver.dir/fm_receiver.cpp.o.d"
  "fm_receiver"
  "fm_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
