# Empty dependencies file for fm_receiver.
# This may be replaced when dependencies are built.
