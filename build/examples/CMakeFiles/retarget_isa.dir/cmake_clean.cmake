file(REMOVE_RECURSE
  "CMakeFiles/retarget_isa.dir/retarget_isa.cpp.o"
  "CMakeFiles/retarget_isa.dir/retarget_isa.cpp.o.d"
  "retarget_isa"
  "retarget_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retarget_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
