# Empty dependencies file for retarget_isa.
# This may be replaced when dependencies are built.
