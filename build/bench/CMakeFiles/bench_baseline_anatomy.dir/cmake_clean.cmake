file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_anatomy.dir/bench_baseline_anatomy.cpp.o"
  "CMakeFiles/bench_baseline_anatomy.dir/bench_baseline_anatomy.cpp.o.d"
  "bench_baseline_anatomy"
  "bench_baseline_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
