# Empty dependencies file for bench_baseline_anatomy.
# This may be replaced when dependencies are built.
