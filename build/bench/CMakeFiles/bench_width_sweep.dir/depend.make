# Empty dependencies file for bench_width_sweep.
# This may be replaced when dependencies are built.
