file(REMOVE_RECURSE
  "CMakeFiles/bench_extended.dir/bench_extended.cpp.o"
  "CMakeFiles/bench_extended.dir/bench_extended.cpp.o.d"
  "bench_extended"
  "bench_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
