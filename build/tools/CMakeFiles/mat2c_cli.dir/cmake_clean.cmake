file(REMOVE_RECURSE
  "CMakeFiles/mat2c_cli.dir/mat2c_cli.cpp.o"
  "CMakeFiles/mat2c_cli.dir/mat2c_cli.cpp.o.d"
  "mat2c"
  "mat2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat2c_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
