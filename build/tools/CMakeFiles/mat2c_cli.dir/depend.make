# Empty dependencies file for mat2c_cli.
# This may be replaced when dependencies are built.
