# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_isa_preset "/root/repo/build/tools/mat2c" "isa" "--preset" "dspx")
set_tests_properties(cli_isa_preset PROPERTIES  PASS_REGULAR_EXPRESSION "simd f64 8" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list_kernels "/root/repo/build/tools/mat2c" "list-kernels")
set_tests_properties(cli_list_kernels PROPERTIES  PASS_REGULAR_EXPRESSION "fmdemod" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compile_inline "/root/repo/build/tools/mat2c" "compile" "-e" "function y = f(x)
y = x .* x;
end" "--entry" "f" "--args" "1x32" "--validate")
set_tests_properties(cli_compile_inline PROPERTIES  PASS_REGULAR_EXPRESSION "max \\|error\\| vs interpreter: 0" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_spec "/root/repo/build/tools/mat2c" "compile" "-e" "function y = f(x)
y = x;
end" "--entry" "f" "--args" "bogus")
set_tests_properties(cli_bad_spec PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_isa_file "sh" "-c" "/root/repo/build/tools/mat2c isa --preset dspx_w4 > /root/repo/build/tools/t.isa && /root/repo/build/tools/mat2c compile -e 'function y = f(x)
y = x .* 2;
end' --entry f --args 1x16 --isa-file /root/repo/build/tools/t.isa --validate")
set_tests_properties(cli_isa_file PROPERTIES  PASS_REGULAR_EXPRESSION "max \\|error\\| vs interpreter: 0" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
