file(REMOVE_RECURSE
  "CMakeFiles/test_lir.dir/lir_test.cpp.o"
  "CMakeFiles/test_lir.dir/lir_test.cpp.o.d"
  "test_lir"
  "test_lir.pdb"
  "test_lir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
