# Empty compiler generated dependencies file for test_lir.
# This may be replaced when dependencies are built.
