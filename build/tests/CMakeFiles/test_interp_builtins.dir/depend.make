# Empty dependencies file for test_interp_builtins.
# This may be replaced when dependencies are built.
