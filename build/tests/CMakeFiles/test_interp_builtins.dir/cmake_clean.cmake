file(REMOVE_RECURSE
  "CMakeFiles/test_interp_builtins.dir/interp_builtins_test.cpp.o"
  "CMakeFiles/test_interp_builtins.dir/interp_builtins_test.cpp.o.d"
  "test_interp_builtins"
  "test_interp_builtins.pdb"
  "test_interp_builtins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_builtins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
