# Empty dependencies file for test_cc_integration.
# This may be replaced when dependencies are built.
