file(REMOVE_RECURSE
  "CMakeFiles/test_cc_integration.dir/cc_integration_test.cpp.o"
  "CMakeFiles/test_cc_integration.dir/cc_integration_test.cpp.o.d"
  "test_cc_integration"
  "test_cc_integration.pdb"
  "test_cc_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
