# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_value[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_interp_builtins[1]_include.cmake")
include("/root/repo/build/tests/test_sema[1]_include.cmake")
include("/root/repo/build/tests/test_lowering[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_lir[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_cc_integration[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_retarget[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
